//! The structured instruction set.

use crate::reg::{FReg, Reg};

/// Integer ALU operations (register-register and register-immediate forms).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication (low 64 bits).
    Mul,
    /// Signed division (result 0 on divide-by-zero, as SimpleScalar traps
    /// are out of scope for this study).
    Div,
    /// Signed remainder (0 on divide-by-zero).
    Rem,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Bitwise NOR.
    Nor,
    /// Logical shift left (shift amount taken modulo 64).
    Sll,
    /// Logical shift right (modulo 64).
    Srl,
    /// Arithmetic shift right (modulo 64).
    Sra,
    /// Set-if-less-than, signed: `rd = (rs < rt) as i64`.
    Slt,
    /// Set-if-less-than, unsigned.
    Sltu,
}

impl AluOp {
    /// Assembler mnemonic for the register-register form.
    pub fn mnemonic(self) -> &'static str {
        match self {
            AluOp::Add => "add",
            AluOp::Sub => "sub",
            AluOp::Mul => "mul",
            AluOp::Div => "div",
            AluOp::Rem => "rem",
            AluOp::And => "and",
            AluOp::Or => "or",
            AluOp::Xor => "xor",
            AluOp::Nor => "nor",
            AluOp::Sll => "sll",
            AluOp::Srl => "srl",
            AluOp::Sra => "sra",
            AluOp::Slt => "slt",
            AluOp::Sltu => "sltu",
        }
    }
}

/// Floating-point operations on 64-bit registers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FpuOp {
    /// FP addition.
    Add,
    /// FP subtraction.
    Sub,
    /// FP multiplication.
    Mul,
    /// FP division.
    Div,
}

impl FpuOp {
    /// Assembler mnemonic (`.d` suffix form).
    pub fn mnemonic(self) -> &'static str {
        match self {
            FpuOp::Add => "fadd.d",
            FpuOp::Sub => "fsub.d",
            FpuOp::Mul => "fmul.d",
            FpuOp::Div => "fdiv.d",
        }
    }
}

/// Memory access widths.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Width {
    /// 1 byte.
    Byte,
    /// 2 bytes.
    Half,
    /// 4 bytes.
    Word,
    /// 8 bytes.
    Double,
}

impl Width {
    /// Size in bytes.
    pub fn bytes(self) -> u64 {
        match self {
            Width::Byte => 1,
            Width::Half => 2,
            Width::Word => 4,
            Width::Double => 8,
        }
    }
}

/// Branch comparison conditions (signed, register-register).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BranchCond {
    /// Branch if equal.
    Eq,
    /// Branch if not equal.
    Ne,
    /// Branch if `rs < rt` (signed).
    Lt,
    /// Branch if `rs >= rt` (signed).
    Ge,
    /// Branch if `rs <= rt` (signed).
    Le,
    /// Branch if `rs > rt` (signed).
    Gt,
}

impl BranchCond {
    /// Assembler mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            BranchCond::Eq => "beq",
            BranchCond::Ne => "bne",
            BranchCond::Lt => "blt",
            BranchCond::Ge => "bge",
            BranchCond::Le => "ble",
            BranchCond::Gt => "bgt",
        }
    }

    /// Evaluates the condition on two operand values.
    pub fn eval(self, a: i64, b: i64) -> bool {
        match self {
            BranchCond::Eq => a == b,
            BranchCond::Ne => a != b,
            BranchCond::Lt => a < b,
            BranchCond::Ge => a >= b,
            BranchCond::Le => a <= b,
            BranchCond::Gt => a > b,
        }
    }
}

/// Either register file, for dependence tracking in the timing model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArchReg {
    /// An integer register.
    Int(Reg),
    /// A floating-point register.
    Fp(FReg),
}

/// Functional-unit class an instruction executes on (paper Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FuClass {
    /// Integer ALU: 1-cycle latency, fully pipelined.
    IntAlu,
    /// Integer multiplier: 3-cycle latency, pipelined.
    IntMult,
    /// Integer divider: 12-cycle latency, unpipelined.
    IntDiv,
    /// FP adder: 2-cycle latency, pipelined.
    FpAdd,
    /// FP multiplier: 4-cycle latency, pipelined.
    FpMult,
    /// FP divider: 12-cycle latency, unpipelined.
    FpDiv,
    /// Load/store address generation + cache access port.
    LoadStore,
    /// Consumes no functional unit (jumps, `nop`, `halt`).
    None,
}

/// A single micro-ISA instruction.
///
/// Branch and jump targets are absolute instruction indices into the
/// program text, resolved by the assembler.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Inst {
    /// Integer register-register ALU operation: `rd = rs op rt`.
    Alu {
        /// Operation.
        op: AluOp,
        /// Destination.
        rd: Reg,
        /// First source.
        rs: Reg,
        /// Second source.
        rt: Reg,
    },
    /// Integer register-immediate ALU operation: `rd = rs op imm`.
    AluImm {
        /// Operation.
        op: AluOp,
        /// Destination.
        rd: Reg,
        /// Source.
        rs: Reg,
        /// Immediate operand.
        imm: i64,
    },
    /// Floating-point register-register operation: `fd = fs op ft`.
    Fpu {
        /// Operation.
        op: FpuOp,
        /// Destination.
        fd: FReg,
        /// First source.
        fs: FReg,
        /// Second source.
        ft: FReg,
    },
    /// FP compare: `rd = (fs cond ft) as i64`, executed on the FP adder.
    FpCmp {
        /// Condition (signed semantics applied to the FP ordering).
        cond: BranchCond,
        /// Integer destination.
        rd: Reg,
        /// First FP source.
        fs: FReg,
        /// Second FP source.
        ft: FReg,
    },
    /// Move integer register to FP register (bit conversion from i64).
    MovToFp {
        /// FP destination.
        fd: FReg,
        /// Integer source (value converted `as f64`).
        rs: Reg,
    },
    /// Move FP register to integer register (truncating `as i64`).
    MovFromFp {
        /// Integer destination.
        rd: Reg,
        /// FP source.
        fs: FReg,
    },
    /// Integer load: `rd = mem[rs + offset]`, sign-extended.
    Load {
        /// Access width.
        width: Width,
        /// Destination register.
        rd: Reg,
        /// Base address register.
        base: Reg,
        /// Signed displacement.
        offset: i64,
    },
    /// Integer store: `mem[base + offset] = rs`.
    Store {
        /// Access width.
        width: Width,
        /// Value register.
        rs: Reg,
        /// Base address register.
        base: Reg,
        /// Signed displacement.
        offset: i64,
    },
    /// FP load (width is `Word` for f32-converted or `Double` for f64).
    FLoad {
        /// Access width (`Word` or `Double`).
        width: Width,
        /// FP destination.
        fd: FReg,
        /// Base address register.
        base: Reg,
        /// Signed displacement.
        offset: i64,
    },
    /// FP store.
    FStore {
        /// Access width (`Word` or `Double`).
        width: Width,
        /// FP value register.
        fs: FReg,
        /// Base address register.
        base: Reg,
        /// Signed displacement.
        offset: i64,
    },
    /// Conditional branch on two integer registers.
    Branch {
        /// Comparison condition.
        cond: BranchCond,
        /// First source.
        rs: Reg,
        /// Second source.
        rt: Reg,
        /// Absolute instruction-index target.
        target: u32,
    },
    /// Unconditional jump.
    Jump {
        /// Absolute instruction-index target.
        target: u32,
    },
    /// Jump and link: `rd = return pc; pc = target`.
    JumpAndLink {
        /// Link destination (conventionally `ra`).
        rd: Reg,
        /// Absolute instruction-index target.
        target: u32,
    },
    /// Indirect jump through a register holding an instruction index.
    JumpReg {
        /// Register holding the target instruction index.
        rs: Reg,
    },
    /// No operation.
    Nop,
    /// Stop the program.
    Halt,
}

impl Inst {
    /// The architectural register this instruction writes, if any.
    ///
    /// Writes to `r0` are reported as `None`, so dependence tracking never
    /// creates producers for the hardwired-zero register.
    pub fn def(&self) -> Option<ArchReg> {
        let d = match *self {
            Inst::Alu { rd, .. }
            | Inst::AluImm { rd, .. }
            | Inst::Load { rd, .. }
            | Inst::MovFromFp { rd, .. }
            | Inst::FpCmp { rd, .. }
            | Inst::JumpAndLink { rd, .. } => ArchReg::Int(rd),
            Inst::Fpu { fd, .. } | Inst::FLoad { fd, .. } | Inst::MovToFp { fd, .. } => {
                ArchReg::Fp(fd)
            }
            _ => return None,
        };
        match d {
            ArchReg::Int(r) if r.is_zero() => None,
            other => Some(other),
        }
    }

    /// Calls `f` for each architectural register this instruction
    /// reads, in operand order — the allocation-free core of
    /// [`uses`](Self::uses), which dependence analysis runs once per
    /// dispatched instruction.
    ///
    /// Reads of `r0` are omitted (always-ready constant zero).
    pub fn for_each_use(&self, mut f: impl FnMut(ArchReg)) {
        fn int(f: &mut impl FnMut(ArchReg), r: Reg) {
            if !r.is_zero() {
                f(ArchReg::Int(r));
            }
        }
        match *self {
            Inst::Alu { rs, rt, .. } => {
                int(&mut f, rs);
                int(&mut f, rt);
            }
            Inst::AluImm { rs, .. } => int(&mut f, rs),
            Inst::Fpu { fs, ft, .. } | Inst::FpCmp { fs, ft, .. } => {
                f(ArchReg::Fp(fs));
                f(ArchReg::Fp(ft));
            }
            Inst::MovToFp { rs, .. } => int(&mut f, rs),
            Inst::MovFromFp { fs, .. } => f(ArchReg::Fp(fs)),
            Inst::Load { base, .. } | Inst::FLoad { base, .. } => int(&mut f, base),
            Inst::Store { rs, base, .. } => {
                int(&mut f, rs);
                int(&mut f, base);
            }
            Inst::FStore { fs, base, .. } => {
                f(ArchReg::Fp(fs));
                int(&mut f, base);
            }
            Inst::Branch { rs, rt, .. } => {
                int(&mut f, rs);
                int(&mut f, rt);
            }
            Inst::JumpReg { rs } => int(&mut f, rs),
            Inst::Jump { .. } | Inst::JumpAndLink { .. } | Inst::Nop | Inst::Halt => {}
        }
    }

    /// The architectural registers this instruction reads, as a fresh
    /// vector (convenience wrapper over
    /// [`for_each_use`](Self::for_each_use)).
    ///
    /// Reads of `r0` are omitted (always-ready constant zero).
    pub fn uses(&self) -> Vec<ArchReg> {
        let mut out = Vec::with_capacity(2);
        self.for_each_use(|r| out.push(r));
        out
    }

    /// The functional-unit class this instruction occupies (paper Table 1).
    pub fn fu_class(&self) -> FuClass {
        match *self {
            Inst::Alu { op, .. } | Inst::AluImm { op, .. } => match op {
                AluOp::Mul => FuClass::IntMult,
                AluOp::Div | AluOp::Rem => FuClass::IntDiv,
                _ => FuClass::IntAlu,
            },
            Inst::Fpu { op, .. } => match op {
                FpuOp::Add | FpuOp::Sub => FuClass::FpAdd,
                FpuOp::Mul => FuClass::FpMult,
                FpuOp::Div => FuClass::FpDiv,
            },
            Inst::FpCmp { .. } => FuClass::FpAdd,
            Inst::MovToFp { .. } | Inst::MovFromFp { .. } => FuClass::IntAlu,
            Inst::Load { .. } | Inst::FLoad { .. } | Inst::Store { .. } | Inst::FStore { .. } => {
                FuClass::LoadStore
            }
            Inst::Branch { .. } => FuClass::IntAlu,
            Inst::Jump { .. } | Inst::JumpAndLink { .. } | Inst::JumpReg { .. } => FuClass::IntAlu,
            Inst::Nop | Inst::Halt => FuClass::None,
        }
    }

    /// Whether this is a memory (load or store) instruction.
    pub fn is_mem(&self) -> bool {
        matches!(
            self,
            Inst::Load { .. } | Inst::Store { .. } | Inst::FLoad { .. } | Inst::FStore { .. }
        )
    }

    /// Whether this is a load.
    pub fn is_load(&self) -> bool {
        matches!(self, Inst::Load { .. } | Inst::FLoad { .. })
    }

    /// Whether this is a store.
    pub fn is_store(&self) -> bool {
        matches!(self, Inst::Store { .. } | Inst::FStore { .. })
    }

    /// Whether this is a control-flow instruction.
    pub fn is_control(&self) -> bool {
        matches!(
            self,
            Inst::Branch { .. }
                | Inst::Jump { .. }
                | Inst::JumpAndLink { .. }
                | Inst::JumpReg { .. }
        )
    }

    /// The base (address) register of a memory instruction, if any.
    ///
    /// Timing models use this to distinguish *address* dependences from
    /// *data* dependences: a store's effective address is known as soon as
    /// its base register is available, even if the stored value is not —
    /// which is what lets younger loads proceed ("loads may execute when
    /// all prior store addresses are known", paper §2.1).
    pub fn mem_base(&self) -> Option<Reg> {
        match *self {
            Inst::Load { base, .. }
            | Inst::Store { base, .. }
            | Inst::FLoad { base, .. }
            | Inst::FStore { base, .. } => Some(base),
            _ => None,
        }
    }

    /// Memory access width, if this is a memory instruction.
    pub fn mem_width(&self) -> Option<Width> {
        match *self {
            Inst::Load { width, .. }
            | Inst::Store { width, .. }
            | Inst::FLoad { width, .. }
            | Inst::FStore { width, .. } => Some(width),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(i: u8) -> Reg {
        Reg::new(i)
    }
    fn f(i: u8) -> FReg {
        FReg::new(i)
    }

    #[test]
    fn def_skips_zero_register() {
        let i = Inst::Alu {
            op: AluOp::Add,
            rd: Reg::ZERO,
            rs: r(1),
            rt: r(2),
        };
        assert_eq!(i.def(), None);
        let i = Inst::Alu {
            op: AluOp::Add,
            rd: r(3),
            rs: r(1),
            rt: r(2),
        };
        assert_eq!(i.def(), Some(ArchReg::Int(r(3))));
    }

    #[test]
    fn uses_skip_zero_register() {
        let i = Inst::Alu {
            op: AluOp::Add,
            rd: r(3),
            rs: Reg::ZERO,
            rt: r(2),
        };
        assert_eq!(i.uses(), vec![ArchReg::Int(r(2))]);
    }

    #[test]
    fn store_uses_value_and_base() {
        let i = Inst::Store {
            width: Width::Word,
            rs: r(4),
            base: r(5),
            offset: 8,
        };
        assert_eq!(i.uses(), vec![ArchReg::Int(r(4)), ArchReg::Int(r(5))]);
        assert_eq!(i.def(), None);
        assert!(i.is_store() && i.is_mem() && !i.is_load());
    }

    #[test]
    fn fp_load_defines_fp_register() {
        let i = Inst::FLoad {
            width: Width::Double,
            fd: f(2),
            base: r(5),
            offset: 0,
        };
        assert_eq!(i.def(), Some(ArchReg::Fp(f(2))));
        assert!(i.is_load());
        assert_eq!(i.mem_width(), Some(Width::Double));
    }

    #[test]
    fn fu_classes_follow_table1() {
        let add = Inst::Alu {
            op: AluOp::Add,
            rd: r(1),
            rs: r(2),
            rt: r(3),
        };
        let mul = Inst::Alu {
            op: AluOp::Mul,
            rd: r(1),
            rs: r(2),
            rt: r(3),
        };
        let div = Inst::AluImm {
            op: AluOp::Rem,
            rd: r(1),
            rs: r(2),
            imm: 3,
        };
        let fadd = Inst::Fpu {
            op: FpuOp::Add,
            fd: f(1),
            fs: f(2),
            ft: f(3),
        };
        let fdiv = Inst::Fpu {
            op: FpuOp::Div,
            fd: f(1),
            fs: f(2),
            ft: f(3),
        };
        let lw = Inst::Load {
            width: Width::Word,
            rd: r(1),
            base: r(2),
            offset: 0,
        };
        assert_eq!(add.fu_class(), FuClass::IntAlu);
        assert_eq!(mul.fu_class(), FuClass::IntMult);
        assert_eq!(div.fu_class(), FuClass::IntDiv);
        assert_eq!(fadd.fu_class(), FuClass::FpAdd);
        assert_eq!(fdiv.fu_class(), FuClass::FpDiv);
        assert_eq!(lw.fu_class(), FuClass::LoadStore);
        assert_eq!(Inst::Halt.fu_class(), FuClass::None);
    }

    #[test]
    fn branch_cond_eval() {
        assert!(BranchCond::Eq.eval(1, 1));
        assert!(BranchCond::Ne.eval(1, 2));
        assert!(BranchCond::Lt.eval(-1, 0));
        assert!(BranchCond::Ge.eval(0, 0));
        assert!(BranchCond::Le.eval(-5, -5));
        assert!(BranchCond::Gt.eval(5, -5));
        assert!(!BranchCond::Gt.eval(-5, 5));
    }

    #[test]
    fn widths() {
        assert_eq!(Width::Byte.bytes(), 1);
        assert_eq!(Width::Half.bytes(), 2);
        assert_eq!(Width::Word.bytes(), 4);
        assert_eq!(Width::Double.bytes(), 8);
    }

    #[test]
    fn control_classification() {
        let b = Inst::Branch {
            cond: BranchCond::Eq,
            rs: r(1),
            rt: r(2),
            target: 0,
        };
        assert!(b.is_control());
        assert!(!b.is_mem());
        assert!(Inst::Jump { target: 3 }.is_control());
        assert!(!Inst::Nop.is_control());
    }
}
