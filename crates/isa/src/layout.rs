//! Default address-space layout for assembled programs.
//!
//! The micro-ISA uses a flat 64-bit byte-addressable space. PCs are
//! instruction indices into [`crate::Program::text`] and do not occupy the
//! data address space; only data addresses flow through the cache models.

/// Base virtual address of the `.data` section.
pub const DATA_BASE: u64 = 0x1000_0000;

/// Base virtual address of the heap region.
///
/// Workload kernels that synthesize their own data structures at run time
/// (rather than via `.data` directives) allocate upward from here.
pub const HEAP_BASE: u64 = 0x2000_0000;

/// Initial stack pointer. The stack grows downward from this address.
pub const STACK_TOP: u64 = 0x7fff_0000;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_are_disjoint_and_ordered() {
        let bases = [DATA_BASE, HEAP_BASE, STACK_TOP];
        assert!(bases.windows(2).all(|w| w[0] < w[1]));
        // All bases are page aligned (and so line aligned for any
        // plausible line size).
        assert!(bases.iter().all(|b| b % 4096 == 0));
    }
}
