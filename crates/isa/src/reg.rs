//! Architectural register names.

use std::fmt;

/// Number of integer registers (and, independently, FP registers).
pub const NUM_REGS: usize = 32;

/// An integer architectural register, `r0` through `r31`.
///
/// `r0` is hardwired to zero: writes to it are discarded by the emulator,
/// reads always return 0. By convention (mirrored in the assembler's
/// register aliases) `r29` is the stack pointer `sp` and `r31` the link
/// register `ra`.
///
/// # Examples
///
/// ```
/// use hbdc_isa::Reg;
///
/// let sp = Reg::new(29);
/// assert_eq!(sp.index(), 29);
/// assert_eq!(sp.to_string(), "r29");
/// assert!(Reg::ZERO.is_zero());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(u8);

impl Reg {
    /// The hardwired-zero register `r0`.
    pub const ZERO: Reg = Reg(0);
    /// The conventional stack pointer, `r29`.
    pub const SP: Reg = Reg(29);
    /// The conventional frame pointer, `r30`.
    pub const FP: Reg = Reg(30);
    /// The conventional link register, `r31`.
    pub const RA: Reg = Reg(31);

    /// Creates a register from its index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 32`.
    pub fn new(index: u8) -> Self {
        assert!(
            (index as usize) < NUM_REGS,
            "integer register out of range: {index}"
        );
        Reg(index)
    }

    /// The register's index, `0..32`.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Whether this is the hardwired-zero register.
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// A floating-point architectural register, `f0` through `f31`.
///
/// All FP registers hold a 64-bit IEEE double; single-precision loads
/// convert on the way in, mirroring how the study treats all FP data as
/// double words.
///
/// # Examples
///
/// ```
/// use hbdc_isa::FReg;
///
/// let f2 = FReg::new(2);
/// assert_eq!(f2.index(), 2);
/// assert_eq!(f2.to_string(), "f2");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FReg(u8);

impl FReg {
    /// Creates an FP register from its index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 32`.
    pub fn new(index: u8) -> Self {
        assert!(
            (index as usize) < NUM_REGS,
            "fp register out of range: {index}"
        );
        FReg(index)
    }

    /// The register's index, `0..32`.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for FReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reg_roundtrip() {
        for i in 0..32u8 {
            assert_eq!(Reg::new(i).index(), i as usize);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn reg_out_of_range_panics() {
        Reg::new(32);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn freg_out_of_range_panics() {
        FReg::new(99);
    }

    #[test]
    fn zero_register_identity() {
        assert!(Reg::ZERO.is_zero());
        assert!(!Reg::SP.is_zero());
        assert_eq!(Reg::RA.index(), 31);
        assert_eq!(Reg::SP.index(), 29);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Reg::new(7).to_string(), "r7");
        assert_eq!(FReg::new(31).to_string(), "f31");
    }
}
