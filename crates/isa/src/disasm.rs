//! Disassembler: renders instructions back to assembler-compatible text.
//!
//! The output of [`inst_to_string`] re-assembles to the same instruction,
//! which the property tests in this crate verify. Branch and jump targets
//! render as synthetic labels `L<target>`, so whole-program output from
//! [`program_to_string`] is self-consistent.

use crate::inst::{Inst, Width};
use crate::program::Program;

fn width_suffix(width: Width) -> &'static str {
    match width {
        Width::Byte => "b",
        Width::Half => "h",
        Width::Word => "w",
        Width::Double => "d",
    }
}

/// Renders one instruction as assembler text.
///
/// # Examples
///
/// ```
/// use hbdc_isa::{disasm, AluOp, Inst, Reg};
///
/// let i = Inst::Alu { op: AluOp::Add, rd: Reg::new(1), rs: Reg::new(2), rt: Reg::new(3) };
/// assert_eq!(disasm::inst_to_string(&i), "add r1, r2, r3");
/// ```
pub fn inst_to_string(inst: &Inst) -> String {
    match *inst {
        Inst::Alu { op, rd, rs, rt } => format!("{} {rd}, {rs}, {rt}", op.mnemonic()),
        Inst::AluImm { op, rd, rs, imm } => format!("{}i {rd}, {rs}, {imm}", op.mnemonic()),
        Inst::Fpu { op, fd, fs, ft } => format!("{} {fd}, {fs}, {ft}", op.mnemonic()),
        Inst::FpCmp { cond, rd, fs, ft } => {
            // fcmp.<cond> reuses the branch mnemonic without its leading 'b'.
            format!("fcmp.{} {rd}, {fs}, {ft}", &cond.mnemonic()[1..])
        }
        Inst::MovToFp { fd, rs } => format!("itof {fd}, {rs}"),
        Inst::MovFromFp { rd, fs } => format!("ftoi {rd}, {fs}"),
        Inst::Load {
            width,
            rd,
            base,
            offset,
        } => {
            format!("l{} {rd}, {offset}({base})", width_suffix(width))
        }
        Inst::Store {
            width,
            rs,
            base,
            offset,
        } => {
            format!("s{} {rs}, {offset}({base})", width_suffix(width))
        }
        Inst::FLoad {
            width,
            fd,
            base,
            offset,
        } => {
            let m = if width == Width::Double { "fld" } else { "flw" };
            format!("{m} {fd}, {offset}({base})")
        }
        Inst::FStore {
            width,
            fs,
            base,
            offset,
        } => {
            let m = if width == Width::Double { "fsd" } else { "fsw" };
            format!("{m} {fs}, {offset}({base})")
        }
        Inst::Branch {
            cond,
            rs,
            rt,
            target,
        } => {
            format!("{} {rs}, {rt}, L{target}", cond.mnemonic())
        }
        Inst::Jump { target } => format!("j L{target}"),
        Inst::JumpAndLink { rd: _, target } => format!("jal L{target}"),
        Inst::JumpReg { rs } => format!("jr {rs}"),
        Inst::Nop => "nop".to_string(),
        Inst::Halt => "halt".to_string(),
    }
}

/// Renders a program's initialized data image as `.data` directives:
/// zero runs compress to `.space`, other bytes emit as `.byte` rows. The
/// output re-assembles to the identical image.
fn data_section(data: &[u8]) -> String {
    let mut out = String::from(".data\n");
    let mut i = 0;
    while i < data.len() {
        let start = i;
        if data[i] == 0 {
            while i < data.len() && data[i] == 0 {
                i += 1;
            }
            out.push_str(&format!("    .space {}\n", i - start));
        } else {
            while i < data.len() && data[i] != 0 && i - start < 16 {
                i += 1;
            }
            let row: Vec<String> = data[start..i].iter().map(u8::to_string).collect();
            out.push_str(&format!("    .byte {}\n", row.join(", ")));
        }
    }
    out
}

/// Renders a whole program — `.data` image (when present) and `.text`
/// with synthetic `L<pc>` labels on every instruction — producing
/// re-assemblable output: assembling it reproduces the same instruction
/// text, data image, and entry point. (Symbol names are not preserved;
/// they do not affect execution.)
pub fn program_to_string(program: &Program) -> String {
    let mut out = String::new();
    if !program.data().is_empty() {
        out.push_str(&data_section(program.data()));
    }
    out.push_str(".text\n");
    for (pc, inst) in program.text().iter().enumerate() {
        if program.entry() as usize == pc {
            out.push_str("main:\n");
        }
        out.push_str(&format!("L{pc}: {}\n", inst_to_string(inst)));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;
    use crate::inst::{AluOp, BranchCond, FpuOp};
    use crate::reg::{FReg, Reg};

    #[test]
    fn renders_core_forms() {
        let r = Reg::new;
        let f = FReg::new;
        assert_eq!(
            inst_to_string(&Inst::AluImm {
                op: AluOp::Add,
                rd: r(1),
                rs: r(2),
                imm: -4
            }),
            "addi r1, r2, -4"
        );
        assert_eq!(
            inst_to_string(&Inst::Fpu {
                op: FpuOp::Mul,
                fd: f(1),
                fs: f(2),
                ft: f(3)
            }),
            "fmul.d f1, f2, f3"
        );
        assert_eq!(
            inst_to_string(&Inst::Load {
                width: Width::Byte,
                rd: r(1),
                base: r(2),
                offset: 3
            }),
            "lb r1, 3(r2)"
        );
        assert_eq!(
            inst_to_string(&Inst::FStore {
                width: Width::Double,
                fs: f(4),
                base: r(5),
                offset: -8
            }),
            "fsd f4, -8(r5)"
        );
        assert_eq!(
            inst_to_string(&Inst::Branch {
                cond: BranchCond::Ne,
                rs: r(1),
                rt: r(0),
                target: 7
            }),
            "bne r1, r0, L7"
        );
        assert_eq!(
            inst_to_string(&Inst::FpCmp {
                cond: BranchCond::Le,
                rd: r(2),
                fs: f(0),
                ft: f(1)
            }),
            "fcmp.le r2, f0, f1"
        );
    }

    #[test]
    fn program_roundtrip_through_assembler() {
        let src = r#"
        main:
            li   r8, 10
            li   r9, 0
        loop:
            add  r9, r9, r8
            addi r8, r8, -1
            bne  r8, r0, loop
            fadd.d f1, f2, f3
            jal  loop
            jr   ra
            halt
        "#;
        let p1 = assemble(src).unwrap();
        let text = program_to_string(&p1);
        let p2 = assemble(&text).unwrap();
        assert_eq!(p1.text(), p2.text());
        assert_eq!(p2.entry(), p1.entry());
    }

    #[test]
    fn data_image_roundtrips_through_assembler() {
        let src = r#"
        .data
        v: .word 1, -1
        s: .asciiz "hbdc"
        pad: .space 9
        tail: .byte 7, 0, 255
        .text
        main:
            la r8, v
            lw r1, 0(r8)
            halt
        "#;
        let p1 = assemble(src).unwrap();
        let text = program_to_string(&p1);
        let p2 = assemble(&text).unwrap();
        assert_eq!(p1.text(), p2.text());
        assert_eq!(
            p1.data(),
            p2.data(),
            "data image must survive the round trip"
        );
        assert_eq!(p1.entry(), p2.entry());
    }

    #[test]
    fn dataless_program_renders_without_data_section() {
        let p = assemble(".text\nmain:\n halt\n").unwrap();
        assert!(program_to_string(&p).starts_with(".text\n"));
    }
}
