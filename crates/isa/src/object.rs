//! Binary object format: compact serialization of assembled programs.
//!
//! Workload kernels are cheap to re-assemble, but experiment fleets that
//! run hundreds of simulations benefit from assembling once and reloading
//! a verified binary image. The format is deliberately simple:
//!
//! ```text
//! magic "HBDC"  u32 version  u32 entry  u32 text_len  u64 data_len
//! text_len x 12-byte instruction records
//! data bytes
//! ```
//!
//! Each instruction record is `opcode:u8 a:u8 b:u8 c:u8 imm:i64` where the
//! register/immediate fields are opcode-specific. Symbols are not
//! serialized — they exist for assembly-time resolution only.

use crate::error::AsmError;
use crate::inst::{AluOp, BranchCond, FpuOp, Inst, Width};
use crate::program::Program;
use crate::reg::{FReg, Reg};

const MAGIC: &[u8; 4] = b"HBDC";
const VERSION: u32 = 1;

fn alu_code(op: AluOp) -> u8 {
    match op {
        AluOp::Add => 0,
        AluOp::Sub => 1,
        AluOp::Mul => 2,
        AluOp::Div => 3,
        AluOp::Rem => 4,
        AluOp::And => 5,
        AluOp::Or => 6,
        AluOp::Xor => 7,
        AluOp::Nor => 8,
        AluOp::Sll => 9,
        AluOp::Srl => 10,
        AluOp::Sra => 11,
        AluOp::Slt => 12,
        AluOp::Sltu => 13,
    }
}

fn alu_from(code: u8) -> Option<AluOp> {
    Some(match code {
        0 => AluOp::Add,
        1 => AluOp::Sub,
        2 => AluOp::Mul,
        3 => AluOp::Div,
        4 => AluOp::Rem,
        5 => AluOp::And,
        6 => AluOp::Or,
        7 => AluOp::Xor,
        8 => AluOp::Nor,
        9 => AluOp::Sll,
        10 => AluOp::Srl,
        11 => AluOp::Sra,
        12 => AluOp::Slt,
        13 => AluOp::Sltu,
        _ => return None,
    })
}

fn width_code(w: Width) -> u8 {
    match w {
        Width::Byte => 0,
        Width::Half => 1,
        Width::Word => 2,
        Width::Double => 3,
    }
}

fn width_from(code: u8) -> Option<Width> {
    Some(match code {
        0 => Width::Byte,
        1 => Width::Half,
        2 => Width::Word,
        3 => Width::Double,
        _ => return None,
    })
}

fn cond_code(c: BranchCond) -> u8 {
    match c {
        BranchCond::Eq => 0,
        BranchCond::Ne => 1,
        BranchCond::Lt => 2,
        BranchCond::Ge => 3,
        BranchCond::Le => 4,
        BranchCond::Gt => 5,
    }
}

fn cond_from(code: u8) -> Option<BranchCond> {
    Some(match code {
        0 => BranchCond::Eq,
        1 => BranchCond::Ne,
        2 => BranchCond::Lt,
        3 => BranchCond::Ge,
        4 => BranchCond::Le,
        5 => BranchCond::Gt,
        _ => return None,
    })
}

/// (opcode, a, b, c, imm) record for one instruction.
fn encode_inst(inst: &Inst) -> (u8, u8, u8, u8, i64) {
    match *inst {
        Inst::Alu { op, rd, rs, rt } => (
            0,
            rd.index() as u8,
            rs.index() as u8,
            rt.index() as u8,
            alu_code(op) as i64,
        ),
        Inst::AluImm { op, rd, rs, imm } => {
            (1, rd.index() as u8, rs.index() as u8, alu_code(op), imm)
        }
        Inst::Fpu { op, fd, fs, ft } => {
            let code = match op {
                FpuOp::Add => 0,
                FpuOp::Sub => 1,
                FpuOp::Mul => 2,
                FpuOp::Div => 3,
            };
            (
                2,
                fd.index() as u8,
                fs.index() as u8,
                ft.index() as u8,
                code,
            )
        }
        Inst::FpCmp { cond, rd, fs, ft } => (
            3,
            rd.index() as u8,
            fs.index() as u8,
            ft.index() as u8,
            cond_code(cond) as i64,
        ),
        Inst::MovToFp { fd, rs } => (4, fd.index() as u8, rs.index() as u8, 0, 0),
        Inst::MovFromFp { rd, fs } => (5, rd.index() as u8, fs.index() as u8, 0, 0),
        Inst::Load {
            width,
            rd,
            base,
            offset,
        } => (
            6,
            rd.index() as u8,
            base.index() as u8,
            width_code(width),
            offset,
        ),
        Inst::Store {
            width,
            rs,
            base,
            offset,
        } => (
            7,
            rs.index() as u8,
            base.index() as u8,
            width_code(width),
            offset,
        ),
        Inst::FLoad {
            width,
            fd,
            base,
            offset,
        } => (
            8,
            fd.index() as u8,
            base.index() as u8,
            width_code(width),
            offset,
        ),
        Inst::FStore {
            width,
            fs,
            base,
            offset,
        } => (
            9,
            fs.index() as u8,
            base.index() as u8,
            width_code(width),
            offset,
        ),
        Inst::Branch {
            cond,
            rs,
            rt,
            target,
        } => (
            10,
            rs.index() as u8,
            rt.index() as u8,
            cond_code(cond),
            target as i64,
        ),
        Inst::Jump { target } => (11, 0, 0, 0, target as i64),
        Inst::JumpAndLink { rd, target } => (12, rd.index() as u8, 0, 0, target as i64),
        Inst::JumpReg { rs } => (13, rs.index() as u8, 0, 0, 0),
        Inst::Nop => (14, 0, 0, 0, 0),
        Inst::Halt => (15, 0, 0, 0, 0),
    }
}

fn decode_inst(op: u8, a: u8, b: u8, c: u8, imm: i64) -> Result<Inst, AsmError> {
    let bad = |what: &str| AsmError::new(0, format!("corrupt object: bad {what}"));
    let reg = |i: u8| -> Result<Reg, AsmError> {
        if (i as usize) < 32 {
            Ok(Reg::new(i))
        } else {
            Err(bad("register"))
        }
    };
    let freg = |i: u8| -> Result<FReg, AsmError> {
        if (i as usize) < 32 {
            Ok(FReg::new(i))
        } else {
            Err(bad("fp register"))
        }
    };
    Ok(match op {
        0 => Inst::Alu {
            op: alu_from(imm as u8).ok_or_else(|| bad("alu op"))?,
            rd: reg(a)?,
            rs: reg(b)?,
            rt: reg(c)?,
        },
        1 => Inst::AluImm {
            op: alu_from(c).ok_or_else(|| bad("alu op"))?,
            rd: reg(a)?,
            rs: reg(b)?,
            imm,
        },
        2 => Inst::Fpu {
            op: match imm {
                0 => FpuOp::Add,
                1 => FpuOp::Sub,
                2 => FpuOp::Mul,
                3 => FpuOp::Div,
                _ => return Err(bad("fpu op")),
            },
            fd: freg(a)?,
            fs: freg(b)?,
            ft: freg(c)?,
        },
        3 => Inst::FpCmp {
            cond: cond_from(imm as u8).ok_or_else(|| bad("condition"))?,
            rd: reg(a)?,
            fs: freg(b)?,
            ft: freg(c)?,
        },
        4 => Inst::MovToFp {
            fd: freg(a)?,
            rs: reg(b)?,
        },
        5 => Inst::MovFromFp {
            rd: reg(a)?,
            fs: freg(b)?,
        },
        6 => Inst::Load {
            width: width_from(c).ok_or_else(|| bad("width"))?,
            rd: reg(a)?,
            base: reg(b)?,
            offset: imm,
        },
        7 => Inst::Store {
            width: width_from(c).ok_or_else(|| bad("width"))?,
            rs: reg(a)?,
            base: reg(b)?,
            offset: imm,
        },
        8 => Inst::FLoad {
            width: width_from(c).ok_or_else(|| bad("width"))?,
            fd: freg(a)?,
            base: reg(b)?,
            offset: imm,
        },
        9 => Inst::FStore {
            width: width_from(c).ok_or_else(|| bad("width"))?,
            fs: freg(a)?,
            base: reg(b)?,
            offset: imm,
        },
        10 => Inst::Branch {
            cond: cond_from(c).ok_or_else(|| bad("condition"))?,
            rs: reg(a)?,
            rt: reg(b)?,
            target: u32::try_from(imm).map_err(|_| bad("target"))?,
        },
        11 => Inst::Jump {
            target: u32::try_from(imm).map_err(|_| bad("target"))?,
        },
        12 => Inst::JumpAndLink {
            rd: reg(a)?,
            target: u32::try_from(imm).map_err(|_| bad("target"))?,
        },
        13 => Inst::JumpReg { rs: reg(a)? },
        14 => Inst::Nop,
        15 => Inst::Halt,
        _ => return Err(bad("opcode")),
    })
}

/// Serializes a program to the binary object format (symbols excluded).
///
/// # Examples
///
/// ```
/// use hbdc_isa::asm::assemble;
/// use hbdc_isa::object;
///
/// let p = assemble("main: li r1, 7\n halt\n")?;
/// let bytes = object::to_bytes(&p);
/// let back = object::from_bytes(&bytes)?;
/// assert_eq!(p.text(), back.text());
/// # Ok::<(), hbdc_isa::AsmError>(())
/// ```
pub fn to_bytes(program: &Program) -> Vec<u8> {
    let mut out = Vec::with_capacity(24 + program.text().len() * 12 + program.data().len());
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&program.entry().to_le_bytes());
    out.extend_from_slice(&(program.text().len() as u32).to_le_bytes());
    out.extend_from_slice(&(program.data().len() as u64).to_le_bytes());
    for inst in program.text() {
        let (op, a, b, c, imm) = encode_inst(inst);
        out.extend_from_slice(&[op, a, b, c]);
        out.extend_from_slice(&imm.to_le_bytes());
    }
    out.extend_from_slice(program.data());
    out
}

/// Deserializes a program from the binary object format.
///
/// # Errors
///
/// Returns an [`AsmError`] on a bad magic, unsupported version, truncated
/// input, or any corrupt instruction record.
pub fn from_bytes(bytes: &[u8]) -> Result<Program, AsmError> {
    let bad = |what: &str| AsmError::new(0, format!("corrupt object: {what}"));
    if bytes.len() < 24 {
        return Err(bad("truncated header"));
    }
    if &bytes[0..4] != MAGIC {
        return Err(bad("bad magic"));
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().expect("sliced"));
    if version != VERSION {
        return Err(AsmError::new(
            0,
            format!("unsupported object version {version}"),
        ));
    }
    let entry = u32::from_le_bytes(bytes[8..12].try_into().expect("sliced"));
    let text_len = u32::from_le_bytes(bytes[12..16].try_into().expect("sliced")) as usize;
    let data_len = u64::from_le_bytes(bytes[16..24].try_into().expect("sliced")) as usize;
    let need = 24 + text_len * 12 + data_len;
    if bytes.len() != need {
        return Err(bad("length mismatch"));
    }
    let mut text = Vec::with_capacity(text_len);
    let mut pos = 24;
    for _ in 0..text_len {
        let rec = &bytes[pos..pos + 12];
        let imm = i64::from_le_bytes(rec[4..12].try_into().expect("sliced"));
        let inst = decode_inst(rec[0], rec[1], rec[2], rec[3], imm)?;
        if let Some(target) = match inst {
            Inst::Branch { target, .. }
            | Inst::Jump { target }
            | Inst::JumpAndLink { target, .. } => Some(target),
            _ => None,
        } {
            if target as usize >= text_len {
                return Err(bad("branch target out of range"));
            }
        }
        text.push(inst);
        pos += 12;
    }
    if entry as usize >= text_len {
        return Err(bad("entry out of range"));
    }
    let data = bytes[pos..pos + data_len].to_vec();
    Ok(Program::from_parts(text, data, Default::default(), entry))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;

    fn sample() -> Program {
        assemble(
            ".data\nv: .word 1, 2, 3\n.text\nmain:\n la r8, v\n li r9, 3\nloop:\n \
             lw r1, 0(r8)\n fadd.d f1, f2, f3\n itof f4, r1\n fcmp.lt r2, f1, f4\n \
             sd r1, -8(sp)\n addi r8, r8, 4\n addi r9, r9, -1\n bnez r9, loop\n \
             jal loop\n jr ra\n halt\n",
        )
        .expect("assembles")
    }

    #[test]
    fn roundtrip_preserves_text_data_entry() {
        let p = sample();
        let bytes = to_bytes(&p);
        let q = from_bytes(&bytes).expect("decodes");
        assert_eq!(p.text(), q.text());
        assert_eq!(p.data(), q.data());
        assert_eq!(p.entry(), q.entry());
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = to_bytes(&sample());
        bytes[0] = b'X';
        assert!(from_bytes(&bytes)
            .unwrap_err()
            .to_string()
            .contains("magic"));
    }

    #[test]
    fn bad_version_rejected() {
        let mut bytes = to_bytes(&sample());
        bytes[4] = 99;
        assert!(from_bytes(&bytes)
            .unwrap_err()
            .to_string()
            .contains("version"));
    }

    #[test]
    fn truncation_rejected() {
        let bytes = to_bytes(&sample());
        for cut in [0, 10, 23, bytes.len() - 1] {
            assert!(from_bytes(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn corrupt_opcode_rejected() {
        let mut bytes = to_bytes(&sample());
        bytes[24] = 200; // first instruction's opcode
        assert!(from_bytes(&bytes).is_err());
    }

    #[test]
    fn corrupt_register_rejected() {
        let mut bytes = to_bytes(&sample());
        bytes[25] = 77; // first instruction's rd
        assert!(from_bytes(&bytes).is_err());
    }

    #[test]
    fn out_of_range_branch_target_rejected() {
        // Hand-build an object with a jump past the end.
        let p = Program::from_parts(
            vec![Inst::Jump { target: 0 }, Inst::Halt],
            vec![],
            Default::default(),
            0,
        );
        let mut bytes = to_bytes(&p);
        // Patch the jump's imm (record 0, bytes 28..36) to 99.
        bytes[28..36].copy_from_slice(&99i64.to_le_bytes());
        assert!(from_bytes(&bytes)
            .unwrap_err()
            .to_string()
            .contains("target"));
    }

    #[test]
    fn empty_data_section_roundtrips() {
        let p = assemble("main: halt\n").unwrap();
        let q = from_bytes(&to_bytes(&p)).unwrap();
        assert_eq!(q.data().len(), 0);
        assert_eq!(q.text(), p.text());
    }
}
