//! Data-section directives: sizing (pass 1) and emission (pass 2).

use crate::error::AsmError;

use super::operand::parse_imm;
use super::split_operands;

/// The growing initialized-data image built during pass 2.
#[derive(Debug, Default)]
pub(crate) struct DataImage {
    bytes: Vec<u8>,
}

/// Splits a directive body like `.word 1, 2` into `(name, args)` where args
/// are comma-separated. String arguments (for `.asciiz`) must not contain
/// commas; the workloads in this repository do not need them to.
fn directive_parts(body: &str) -> (String, Vec<&str>) {
    let stripped = body.trim().strip_prefix('.').unwrap_or(body);
    let (name, args) = split_operands(stripped);
    (name.to_ascii_lowercase(), args)
}

fn align_up(len: u64, align: u64) -> u64 {
    debug_assert!(align.is_power_of_two());
    (len + align - 1) & !(align - 1)
}

/// Pass-1 sizing: returns the data length after applying `body` at `len`.
pub(crate) fn sized(body: &str, len: u64, line: u32) -> Result<u64, AsmError> {
    let (name, args) = directive_parts(body);
    Ok(match name.as_str() {
        "byte" => len + args.len() as u64,
        "half" => align_up(len, 2) + 2 * args.len() as u64,
        "word" => align_up(len, 4) + 4 * args.len() as u64,
        "dword" => align_up(len, 8) + 8 * args.len() as u64,
        "double" => align_up(len, 8) + 8 * args.len() as u64,
        "space" => {
            let n = single_count(&args, "space", line)?;
            len + n
        }
        "align" => {
            let n = single_count(&args, "align", line)?;
            if n > 16 {
                return Err(AsmError::new(line, "alignment exponent too large"));
            }
            align_up(len, 1 << n)
        }
        "asciiz" => {
            let s = string_arg(body, line)?;
            len + s.len() as u64 + 1
        }
        other => {
            return Err(AsmError::new(line, format!("unknown directive `.{other}`")));
        }
    })
}

fn single_count(args: &[&str], name: &str, line: u32) -> Result<u64, AsmError> {
    if args.len() != 1 {
        return Err(AsmError::new(
            line,
            format!("`.{name}` expects one argument"),
        ));
    }
    let v = parse_imm(args[0], line)?;
    u64::try_from(v).map_err(|_| AsmError::new(line, format!("`.{name}` argument must be >= 0")))
}

fn string_arg(body: &str, line: u32) -> Result<String, AsmError> {
    let open = body
        .find('"')
        .ok_or_else(|| AsmError::new(line, "`.asciiz` expects a quoted string"))?;
    let close = body
        .rfind('"')
        .filter(|&c| c > open)
        .ok_or_else(|| AsmError::new(line, "unterminated string"))?;
    Ok(body[open + 1..close].to_string())
}

impl DataImage {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    pub(crate) fn len(&self) -> usize {
        self.bytes.len()
    }

    pub(crate) fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }

    fn pad_to(&mut self, align: u64) {
        let target = align_up(self.bytes.len() as u64, align) as usize;
        self.bytes.resize(target, 0);
    }

    /// Pass-2 emission: appends the bytes described by `body`.
    pub(crate) fn emit(&mut self, body: &str, line: u32) -> Result<(), AsmError> {
        let (name, args) = directive_parts(body);
        match name.as_str() {
            "byte" => {
                for a in args {
                    let v = parse_imm(a, line)?;
                    self.bytes.push(v as u8);
                }
            }
            "half" => {
                self.pad_to(2);
                for a in args {
                    let v = parse_imm(a, line)?;
                    self.bytes.extend_from_slice(&(v as i16).to_le_bytes());
                }
            }
            "word" => {
                self.pad_to(4);
                for a in args {
                    let v = parse_imm(a, line)?;
                    self.bytes.extend_from_slice(&(v as i32).to_le_bytes());
                }
            }
            "dword" => {
                self.pad_to(8);
                for a in args {
                    let v = parse_imm(a, line)?;
                    self.bytes.extend_from_slice(&v.to_le_bytes());
                }
            }
            "double" => {
                self.pad_to(8);
                for a in args {
                    let v: f64 = a
                        .parse()
                        .map_err(|_| AsmError::new(line, format!("bad double `{a}`")))?;
                    self.bytes.extend_from_slice(&v.to_le_bytes());
                }
            }
            "space" => {
                let n = single_count(&args, "space", line)?;
                self.bytes.resize(self.bytes.len() + n as usize, 0);
            }
            "align" => {
                let n = single_count(&args, "align", line)?;
                self.pad_to(1 << n);
            }
            "asciiz" => {
                let s = string_arg(body, line)?;
                self.bytes.extend_from_slice(s.as_bytes());
                self.bytes.push(0);
            }
            other => {
                return Err(AsmError::new(line, format!("unknown directive `.{other}`")));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn emit_all(bodies: &[&str]) -> Vec<u8> {
        let mut img = DataImage::new();
        let mut len = 0;
        for (i, b) in bodies.iter().enumerate() {
            len = sized(b, len, i as u32 + 1).unwrap();
            img.emit(b, i as u32 + 1).unwrap();
            assert_eq!(img.len() as u64, len, "sizing disagrees with emission");
        }
        img.into_bytes()
    }

    #[test]
    fn word_emission_little_endian() {
        let b = emit_all(&[".word 1, -1"]);
        assert_eq!(b, vec![1, 0, 0, 0, 0xff, 0xff, 0xff, 0xff]);
    }

    #[test]
    fn alignment_padding_matches_sizing() {
        let b = emit_all(&[".byte 7", ".word 5"]);
        assert_eq!(b.len(), 8);
        assert_eq!(&b[4..8], &5i32.to_le_bytes());
    }

    #[test]
    fn double_round_trips() {
        let b = emit_all(&[".double 1.5, -2.25"]);
        assert_eq!(f64::from_le_bytes(b[0..8].try_into().unwrap()), 1.5);
        assert_eq!(f64::from_le_bytes(b[8..16].try_into().unwrap()), -2.25);
    }

    #[test]
    fn space_zero_fills() {
        let b = emit_all(&[".byte 1", ".space 3", ".byte 2"]);
        assert_eq!(b, vec![1, 0, 0, 0, 2]);
    }

    #[test]
    fn align_directive() {
        let b = emit_all(&[".byte 1", ".align 3", ".byte 2"]);
        assert_eq!(b.len(), 9);
        assert_eq!(b[8], 2);
    }

    #[test]
    fn asciiz_appends_nul() {
        let b = emit_all(&[".asciiz \"hi\""]);
        assert_eq!(b, vec![b'h', b'i', 0]);
    }

    #[test]
    fn unknown_directive_errors() {
        assert!(sized(".bogus 1", 0, 3).is_err());
        let mut img = DataImage::new();
        assert!(img.emit(".bogus 1", 3).is_err());
    }

    #[test]
    fn negative_space_errors() {
        assert!(sized(".space -4", 0, 1).is_err());
    }

    #[test]
    fn dword_emission() {
        let b = emit_all(&[".dword -1"]);
        assert_eq!(b, vec![0xff; 8]);
    }
}
