//! Two-pass textual assembler for the micro-ISA.
//!
//! # Syntax
//!
//! * Sections: `.text` (default) and `.data`.
//! * Labels: `name:` at the start of a line (may be followed by an
//!   instruction or directive on the same line).
//! * Comments: `#`, `;`, or `//` to end of line.
//! * Data directives: `.byte`, `.half`, `.word`, `.dword`, `.double`,
//!   `.space N`, `.align N` (align to `2^N` bytes), `.asciiz "s"`.
//! * Register aliases: `zero` (r0), `sp` (r29), `fp` (r30), `ra` (r31).
//! * Pseudo-instructions: `li`, `la`, `mov`, `neg`, `not`, `b`,
//!   `beqz`/`bnez`/`bltz`/`bgez`/`blez`/`bgtz`.
//!
//! The entry point is the `main` label if present, otherwise instruction 0.
//!
//! # Examples
//!
//! ```
//! use hbdc_isa::asm::assemble;
//!
//! let p = assemble(
//!     r#"
//!     .data
//!     table:  .word 1, 2, 3, 4
//!     .text
//!     main:
//!         la   r8, table
//!         lw   r9, 0(r8)
//!         lw   r10, 4(r8)
//!         add  r9, r9, r10
//!         halt
//!     "#,
//! )?;
//! assert_eq!(p.text().len(), 5);
//! # Ok::<(), hbdc_isa::AsmError>(())
//! ```

mod directive;
mod operand;

use std::collections::HashMap;

use crate::error::AsmError;
use crate::inst::{AluOp, BranchCond, FpuOp, Inst, Width};
use crate::layout::DATA_BASE;
use crate::program::{Program, Symbol};
use crate::reg::Reg;

use directive::DataImage;
use operand::{parse_freg, parse_imm, parse_mem, parse_reg};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Section {
    Text,
    Data,
}

/// A source line reduced to label / body parts with its 1-based line number.
#[derive(Debug)]
struct Line<'a> {
    number: u32,
    labels: Vec<&'a str>,
    body: Option<&'a str>,
}

fn strip_comment(line: &str) -> &str {
    let mut end = line.len();
    for (i, c) in line.char_indices() {
        if c == '#' || c == ';' {
            end = i;
            break;
        }
        if c == '/' && line[i + 1..].starts_with('/') {
            end = i;
            break;
        }
    }
    &line[..end]
}

fn split_lines(src: &str) -> Result<Vec<Line<'_>>, AsmError> {
    let mut out = Vec::new();
    for (idx, raw) in src.lines().enumerate() {
        let number = idx as u32 + 1;
        let mut rest = strip_comment(raw).trim();
        let mut labels = Vec::new();
        while let Some(colon) = rest.find(':') {
            let (head, tail) = rest.split_at(colon);
            let label = head.trim();
            if label.is_empty()
                || !label
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.')
                || label.starts_with('.')
            {
                break; // not a label — e.g. a string containing ':'
            }
            labels.push(label);
            rest = tail[1..].trim();
        }
        let body = if rest.is_empty() { None } else { Some(rest) };
        if body.is_none() && labels.is_empty() {
            continue;
        }
        out.push(Line {
            number,
            labels,
            body,
        });
    }
    Ok(out)
}

/// Splits an instruction body into mnemonic and comma-separated operands.
fn split_operands(body: &str) -> (&str, Vec<&str>) {
    let body = body.trim();
    match body.find(char::is_whitespace) {
        None => (body, Vec::new()),
        Some(ws) => {
            let (m, rest) = body.split_at(ws);
            let ops = rest
                .split(',')
                .map(str::trim)
                .filter(|s| !s.is_empty())
                .collect();
            (m, ops)
        }
    }
}

/// Assembles micro-ISA source text into a [`Program`].
///
/// # Errors
///
/// Returns an [`AsmError`] carrying the offending source line for unknown
/// mnemonics, malformed operands, duplicate or undefined labels, and
/// malformed directives.
pub fn assemble(src: &str) -> Result<Program, AsmError> {
    let lines = split_lines(src)?;

    // Pass 1: assign label values. Every instruction occupies exactly one
    // text slot (all pseudo-instructions expand 1:1), so text offsets are
    // simple counts; data offsets come from a dry-run of the directives.
    let mut symbols: HashMap<String, Symbol> = HashMap::new();
    let mut section = Section::Text;
    let mut text_len: u32 = 0;
    let mut data_len: u64 = 0;
    for line in &lines {
        for label in &line.labels {
            let sym = match section {
                Section::Text => Symbol::Text(text_len),
                Section::Data => Symbol::Data(DATA_BASE + data_len),
            };
            if symbols.insert((*label).to_string(), sym).is_some() {
                return Err(AsmError::new(
                    line.number,
                    format!("duplicate label `{label}`"),
                ));
            }
        }
        let Some(body) = line.body else { continue };
        if let Some(dir) = body.strip_prefix('.') {
            let (name, _) = split_operands(dir);
            match name {
                "text" => section = Section::Text,
                "data" => section = Section::Data,
                _ => {
                    if section != Section::Data {
                        return Err(AsmError::new(
                            line.number,
                            format!("directive `.{name}` only allowed in .data"),
                        ));
                    }
                    data_len = directive::sized(body, data_len, line.number)?;
                }
            }
        } else {
            if section != Section::Text {
                return Err(AsmError::new(line.number, "instruction outside .text"));
            }
            text_len += 1;
        }
    }

    // Pass 2: emit. Section legality was already checked in pass 1.
    let mut text: Vec<Inst> = Vec::with_capacity(text_len as usize);
    let mut data = DataImage::new();
    for line in &lines {
        let Some(body) = line.body else { continue };
        if let Some(dir) = body.strip_prefix('.') {
            let (name, _) = split_operands(dir);
            match name {
                "text" | "data" => {}
                _ => data.emit(body, line.number)?,
            }
        } else {
            text.push(encode_line(body, line.number, &symbols)?);
        }
    }
    debug_assert_eq!(text.len(), text_len as usize);
    debug_assert_eq!(data.len() as u64, data_len);

    let entry = match symbols.get("main") {
        Some(Symbol::Text(pc)) => *pc,
        Some(Symbol::Data(_)) => {
            return Err(AsmError::new(0, "`main` must be a text label"));
        }
        None => 0,
    };
    if text.is_empty() {
        return Err(AsmError::new(0, "program has no instructions"));
    }
    Ok(Program::from_parts(text, data.into_bytes(), symbols, entry))
}

fn text_target(name: &str, symbols: &HashMap<String, Symbol>, line: u32) -> Result<u32, AsmError> {
    match symbols.get(name) {
        Some(Symbol::Text(pc)) => Ok(*pc),
        Some(Symbol::Data(_)) => Err(AsmError::new(
            line,
            format!("`{name}` is a data label, expected text"),
        )),
        None => Err(AsmError::new(line, format!("undefined label `{name}`"))),
    }
}

fn expect_ops(ops: &[&str], n: usize, mnemonic: &str, line: u32) -> Result<(), AsmError> {
    if ops.len() == n {
        Ok(())
    } else {
        Err(AsmError::new(
            line,
            format!("`{mnemonic}` expects {n} operand(s), got {}", ops.len()),
        ))
    }
}

fn alu_op(name: &str) -> Option<AluOp> {
    Some(match name {
        "add" => AluOp::Add,
        "sub" => AluOp::Sub,
        "mul" => AluOp::Mul,
        "div" => AluOp::Div,
        "rem" => AluOp::Rem,
        "and" => AluOp::And,
        "or" => AluOp::Or,
        "xor" => AluOp::Xor,
        "nor" => AluOp::Nor,
        "sll" => AluOp::Sll,
        "srl" => AluOp::Srl,
        "sra" => AluOp::Sra,
        "slt" => AluOp::Slt,
        "sltu" => AluOp::Sltu,
        _ => return None,
    })
}

fn branch_cond(name: &str) -> Option<BranchCond> {
    Some(match name {
        "beq" => BranchCond::Eq,
        "bne" => BranchCond::Ne,
        "blt" => BranchCond::Lt,
        "bge" => BranchCond::Ge,
        "ble" => BranchCond::Le,
        "bgt" => BranchCond::Gt,
        _ => return None,
    })
}

fn encode_line(body: &str, line: u32, symbols: &HashMap<String, Symbol>) -> Result<Inst, AsmError> {
    let (mnemonic, ops) = split_operands(body);
    let m = mnemonic.to_ascii_lowercase();

    // Integer ALU register-register.
    if let Some(op) = alu_op(&m) {
        expect_ops(&ops, 3, &m, line)?;
        return Ok(Inst::Alu {
            op,
            rd: parse_reg(ops[0], line)?,
            rs: parse_reg(ops[1], line)?,
            rt: parse_reg(ops[2], line)?,
        });
    }
    // Integer ALU register-immediate: `<op>i`.
    if let Some(base) = m.strip_suffix('i') {
        if let Some(op) = alu_op(base) {
            expect_ops(&ops, 3, &m, line)?;
            return Ok(Inst::AluImm {
                op,
                rd: parse_reg(ops[0], line)?,
                rs: parse_reg(ops[1], line)?,
                imm: parse_imm(ops[2], line)?,
            });
        }
    }
    // `sltui` spelled `sltiu` in MIPS tradition: accept both.
    if m == "sltiu" {
        expect_ops(&ops, 3, &m, line)?;
        return Ok(Inst::AluImm {
            op: AluOp::Sltu,
            rd: parse_reg(ops[0], line)?,
            rs: parse_reg(ops[1], line)?,
            imm: parse_imm(ops[2], line)?,
        });
    }

    // Floating point arithmetic.
    let fpu = match m.as_str() {
        "fadd.d" => Some(FpuOp::Add),
        "fsub.d" => Some(FpuOp::Sub),
        "fmul.d" => Some(FpuOp::Mul),
        "fdiv.d" => Some(FpuOp::Div),
        _ => None,
    };
    if let Some(op) = fpu {
        expect_ops(&ops, 3, &m, line)?;
        return Ok(Inst::Fpu {
            op,
            fd: parse_freg(ops[0], line)?,
            fs: parse_freg(ops[1], line)?,
            ft: parse_freg(ops[2], line)?,
        });
    }
    if let Some(cond_name) = m.strip_prefix("fcmp.") {
        let cond = branch_cond(&format!("b{cond_name}"))
            .ok_or_else(|| AsmError::new(line, format!("unknown fp compare `{m}`")))?;
        expect_ops(&ops, 3, &m, line)?;
        return Ok(Inst::FpCmp {
            cond,
            rd: parse_reg(ops[0], line)?,
            fs: parse_freg(ops[1], line)?,
            ft: parse_freg(ops[2], line)?,
        });
    }

    // Register moves between files.
    match m.as_str() {
        "itof" => {
            expect_ops(&ops, 2, &m, line)?;
            return Ok(Inst::MovToFp {
                fd: parse_freg(ops[0], line)?,
                rs: parse_reg(ops[1], line)?,
            });
        }
        "ftoi" => {
            expect_ops(&ops, 2, &m, line)?;
            return Ok(Inst::MovFromFp {
                rd: parse_reg(ops[0], line)?,
                fs: parse_freg(ops[1], line)?,
            });
        }
        _ => {}
    }

    // Loads and stores.
    let int_mem = |width| -> Result<Inst, AsmError> {
        expect_ops(&ops, 2, &m, line)?;
        let rd = parse_reg(ops[0], line)?;
        let (base, offset) = parse_mem(ops[1], symbols, line)?;
        Ok(if m.starts_with('l') {
            Inst::Load {
                width,
                rd,
                base,
                offset,
            }
        } else {
            Inst::Store {
                width,
                rs: rd,
                base,
                offset,
            }
        })
    };
    match m.as_str() {
        "lb" | "sb" => return int_mem(Width::Byte),
        "lh" | "sh" => return int_mem(Width::Half),
        "lw" | "sw" => return int_mem(Width::Word),
        "ld" | "sd" => return int_mem(Width::Double),
        _ => {}
    }
    let fp_mem = |width, is_load: bool| -> Result<Inst, AsmError> {
        expect_ops(&ops, 2, &m, line)?;
        let f = parse_freg(ops[0], line)?;
        let (base, offset) = parse_mem(ops[1], symbols, line)?;
        Ok(if is_load {
            Inst::FLoad {
                width,
                fd: f,
                base,
                offset,
            }
        } else {
            Inst::FStore {
                width,
                fs: f,
                base,
                offset,
            }
        })
    };
    match m.as_str() {
        "flw" => return fp_mem(Width::Word, true),
        "fld" => return fp_mem(Width::Double, true),
        "fsw" => return fp_mem(Width::Word, false),
        "fsd" => return fp_mem(Width::Double, false),
        _ => {}
    }

    // Branches.
    if let Some(cond) = branch_cond(&m) {
        expect_ops(&ops, 3, &m, line)?;
        return Ok(Inst::Branch {
            cond,
            rs: parse_reg(ops[0], line)?,
            rt: parse_reg(ops[1], line)?,
            target: text_target(ops[2], symbols, line)?,
        });
    }
    // Branch-against-zero pseudo forms.
    let bz = match m.as_str() {
        "beqz" => Some(BranchCond::Eq),
        "bnez" => Some(BranchCond::Ne),
        "bltz" => Some(BranchCond::Lt),
        "bgez" => Some(BranchCond::Ge),
        "blez" => Some(BranchCond::Le),
        "bgtz" => Some(BranchCond::Gt),
        _ => None,
    };
    if let Some(cond) = bz {
        expect_ops(&ops, 2, &m, line)?;
        return Ok(Inst::Branch {
            cond,
            rs: parse_reg(ops[0], line)?,
            rt: Reg::ZERO,
            target: text_target(ops[1], symbols, line)?,
        });
    }

    // Jumps.
    match m.as_str() {
        "j" | "b" => {
            expect_ops(&ops, 1, &m, line)?;
            return Ok(Inst::Jump {
                target: text_target(ops[0], symbols, line)?,
            });
        }
        "jal" => {
            expect_ops(&ops, 1, &m, line)?;
            return Ok(Inst::JumpAndLink {
                rd: Reg::RA,
                target: text_target(ops[0], symbols, line)?,
            });
        }
        "jr" => {
            expect_ops(&ops, 1, &m, line)?;
            return Ok(Inst::JumpReg {
                rs: parse_reg(ops[0], line)?,
            });
        }
        _ => {}
    }

    // Remaining pseudo-instructions.
    match m.as_str() {
        "li" => {
            expect_ops(&ops, 2, &m, line)?;
            return Ok(Inst::AluImm {
                op: AluOp::Or,
                rd: parse_reg(ops[0], line)?,
                rs: Reg::ZERO,
                imm: parse_imm(ops[1], line)?,
            });
        }
        "la" => {
            expect_ops(&ops, 2, &m, line)?;
            // `la rd, label` or `la rd, label+disp` — reuse the memory
            // operand grammar, restricted to absolute (r0-based) forms.
            let (base, imm) = parse_mem(ops[1], symbols, line)?;
            if !base.is_zero() {
                return Err(AsmError::new(line, "`la` expects a data label"));
            }
            return Ok(Inst::AluImm {
                op: AluOp::Or,
                rd: parse_reg(ops[0], line)?,
                rs: Reg::ZERO,
                imm,
            });
        }
        "mov" => {
            expect_ops(&ops, 2, &m, line)?;
            return Ok(Inst::Alu {
                op: AluOp::Or,
                rd: parse_reg(ops[0], line)?,
                rs: parse_reg(ops[1], line)?,
                rt: Reg::ZERO,
            });
        }
        "neg" => {
            expect_ops(&ops, 2, &m, line)?;
            return Ok(Inst::Alu {
                op: AluOp::Sub,
                rd: parse_reg(ops[0], line)?,
                rs: Reg::ZERO,
                rt: parse_reg(ops[1], line)?,
            });
        }
        "not" => {
            expect_ops(&ops, 2, &m, line)?;
            return Ok(Inst::Alu {
                op: AluOp::Nor,
                rd: parse_reg(ops[0], line)?,
                rs: parse_reg(ops[1], line)?,
                rt: Reg::ZERO,
            });
        }
        "nop" => {
            expect_ops(&ops, 0, &m, line)?;
            return Ok(Inst::Nop);
        }
        "halt" => {
            expect_ops(&ops, 0, &m, line)?;
            return Ok(Inst::Halt);
        }
        _ => {}
    }

    Err(AsmError::new(
        line,
        format!("unknown mnemonic `{mnemonic}`"),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{AluOp, Inst};

    #[test]
    fn assembles_minimal_program() {
        let p = assemble("halt\n").unwrap();
        assert_eq!(p.text(), &[Inst::Halt]);
    }

    #[test]
    fn empty_program_is_error() {
        assert!(assemble("").is_err());
        assert!(assemble(".data\nx: .word 1\n").is_err());
    }

    #[test]
    fn labels_resolve_forward_and_backward() {
        let p = assemble("main:\n  j end\nmid:\n  nop\n  j mid\nend:\n  halt\n").unwrap();
        assert_eq!(p.text()[0], Inst::Jump { target: 3 });
        assert_eq!(p.text()[2], Inst::Jump { target: 1 });
    }

    #[test]
    fn duplicate_label_is_error() {
        let err = assemble("a:\n nop\na:\n halt\n").unwrap_err();
        assert!(err.to_string().contains("duplicate"));
    }

    #[test]
    fn undefined_label_is_error() {
        let err = assemble("j nowhere\n").unwrap_err();
        assert!(err.to_string().contains("undefined"));
    }

    #[test]
    fn li_and_la_expand() {
        let p =
            assemble(".data\nbuf: .space 8\n.text\nmain: li r1, -7\n la r2, buf\n halt\n").unwrap();
        assert_eq!(
            p.text()[0],
            Inst::AluImm {
                op: AluOp::Or,
                rd: Reg::new(1),
                rs: Reg::ZERO,
                imm: -7
            }
        );
        match p.text()[1] {
            Inst::AluImm { imm, .. } => assert_eq!(imm as u64, DATA_BASE),
            ref other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn comments_are_stripped() {
        let p = assemble("# header\nmain: nop // trailing\n halt ; also\n").unwrap();
        assert_eq!(p.text().len(), 2);
    }

    #[test]
    fn entry_defaults_to_zero_without_main() {
        let p = assemble("nop\nhalt\n").unwrap();
        assert_eq!(p.entry(), 0);
    }

    #[test]
    fn entry_uses_main() {
        let p = assemble("helper: nop\nmain: halt\n").unwrap();
        assert_eq!(p.entry(), 1);
    }

    #[test]
    fn instruction_in_data_section_is_error() {
        let err = assemble(".data\nadd r1, r2, r3\n").unwrap_err();
        assert!(err.to_string().contains("outside .text"));
    }

    #[test]
    fn wrong_operand_count_is_error() {
        let err = assemble("add r1, r2\n").unwrap_err();
        assert!(err.to_string().contains("expects 3"));
    }

    #[test]
    fn branch_zero_pseudos() {
        let p = assemble("main: beqz r4, main\n bgtz r5, main\n halt\n").unwrap();
        assert_eq!(
            p.text()[0],
            Inst::Branch {
                cond: BranchCond::Eq,
                rs: Reg::new(4),
                rt: Reg::ZERO,
                target: 0
            }
        );
        assert_eq!(
            p.text()[1],
            Inst::Branch {
                cond: BranchCond::Gt,
                rs: Reg::new(5),
                rt: Reg::ZERO,
                target: 0
            }
        );
    }

    #[test]
    fn fp_instructions_parse() {
        let p = assemble("fadd.d f1, f2, f3\nfcmp.lt r1, f2, f3\nitof f4, r5\nftoi r6, f7\nhalt\n")
            .unwrap();
        assert!(matches!(p.text()[0], Inst::Fpu { op: FpuOp::Add, .. }));
        assert!(matches!(
            p.text()[1],
            Inst::FpCmp {
                cond: BranchCond::Lt,
                ..
            }
        ));
        assert!(matches!(p.text()[2], Inst::MovToFp { .. }));
        assert!(matches!(p.text()[3], Inst::MovFromFp { .. }));
    }

    #[test]
    fn memory_operand_forms() {
        let p = assemble(
            ".data\nv: .word 9\n.text\nmain: lw r1, 4(r2)\n lw r3, (r4)\n lw r5, v\n sd r6, -8(sp)\n halt\n",
        )
        .unwrap();
        assert_eq!(
            p.text()[0],
            Inst::Load {
                width: Width::Word,
                rd: Reg::new(1),
                base: Reg::new(2),
                offset: 4
            }
        );
        assert_eq!(
            p.text()[1],
            Inst::Load {
                width: Width::Word,
                rd: Reg::new(3),
                base: Reg::new(4),
                offset: 0
            }
        );
        assert_eq!(
            p.text()[2],
            Inst::Load {
                width: Width::Word,
                rd: Reg::new(5),
                base: Reg::ZERO,
                offset: DATA_BASE as i64
            }
        );
        assert_eq!(
            p.text()[3],
            Inst::Store {
                width: Width::Double,
                rs: Reg::new(6),
                base: Reg::SP,
                offset: -8
            }
        );
    }

    #[test]
    fn multiple_labels_on_one_address() {
        let p = assemble("a: b_label: nop\n halt\n").unwrap();
        assert_eq!(p.symbol("a"), Some(Symbol::Text(0)));
        assert_eq!(p.symbol("b_label"), Some(Symbol::Text(0)));
    }

    #[test]
    fn sltiu_alias() {
        let p = assemble("sltiu r1, r2, 10\nhalt\n").unwrap();
        assert!(matches!(
            p.text()[0],
            Inst::AluImm {
                op: AluOp::Sltu,
                imm: 10,
                ..
            }
        ));
    }
}
