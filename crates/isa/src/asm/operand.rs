//! Operand parsing: registers, immediates, and memory operands.

use std::collections::HashMap;

use crate::error::AsmError;
use crate::program::Symbol;
use crate::reg::{FReg, Reg};

/// Parses an integer register name: `rN` or an alias (`zero`, `sp`, `fp`,
/// `ra`).
pub(crate) fn parse_reg(tok: &str, line: u32) -> Result<Reg, AsmError> {
    let t = tok.trim();
    match t {
        "zero" => return Ok(Reg::ZERO),
        "sp" => return Ok(Reg::SP),
        "fp" => return Ok(Reg::FP),
        "ra" => return Ok(Reg::RA),
        _ => {}
    }
    if let Some(num) = t.strip_prefix('r') {
        if let Ok(n) = num.parse::<u8>() {
            if (n as usize) < crate::reg::NUM_REGS {
                return Ok(Reg::new(n));
            }
        }
    }
    Err(AsmError::new(line, format!("bad integer register `{t}`")))
}

/// Parses an FP register name: `fN`.
pub(crate) fn parse_freg(tok: &str, line: u32) -> Result<FReg, AsmError> {
    let t = tok.trim();
    if let Some(num) = t.strip_prefix('f') {
        if let Ok(n) = num.parse::<u8>() {
            if (n as usize) < crate::reg::NUM_REGS {
                return Ok(FReg::new(n));
            }
        }
    }
    Err(AsmError::new(line, format!("bad fp register `{t}`")))
}

/// Parses a signed immediate: decimal or `0x` hexadecimal, optional sign.
pub(crate) fn parse_imm(tok: &str, line: u32) -> Result<i64, AsmError> {
    let t = tok.trim();
    let (neg, rest) = match t.strip_prefix('-') {
        Some(r) => (true, r),
        None => (false, t.strip_prefix('+').unwrap_or(t)),
    };
    let parsed = if let Some(hex) = rest.strip_prefix("0x").or_else(|| rest.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).map(|v| v as i64)
    } else {
        rest.parse::<i64>()
    };
    match parsed {
        Ok(v) => Ok(if neg { -v } else { v }),
        Err(_) => Err(AsmError::new(line, format!("bad immediate `{t}`"))),
    }
}

/// Parses a memory operand into `(base, offset)`.
///
/// Accepted forms:
/// * `off(rN)` — register base with signed displacement;
/// * `(rN)` — register base, zero displacement;
/// * `label` — absolute data address with `r0` base;
/// * `label+imm` / `label-imm` — displaced data address with `r0` base.
pub(crate) fn parse_mem(
    tok: &str,
    symbols: &HashMap<String, Symbol>,
    line: u32,
) -> Result<(Reg, i64), AsmError> {
    let t = tok.trim();
    if let Some(open) = t.find('(') {
        let close = t
            .rfind(')')
            .ok_or_else(|| AsmError::new(line, format!("unclosed `(` in `{t}`")))?;
        if close != t.len() - 1 || close < open {
            return Err(AsmError::new(
                line,
                format!("malformed memory operand `{t}`"),
            ));
        }
        let base = parse_reg(&t[open + 1..close], line)?;
        let off_str = t[..open].trim();
        let offset = if off_str.is_empty() {
            0
        } else {
            parse_imm(off_str, line)?
        };
        return Ok((base, offset));
    }
    // Bare symbol, possibly with +/- displacement.
    let (name, disp) = match t.find(['+', '-']) {
        // A leading '-' would make the name empty — fall through to error.
        Some(0) | None => (t, 0),
        Some(pos) => {
            let d = parse_imm(&t[pos..], line)?;
            (t[..pos].trim_end(), d)
        }
    };
    match symbols.get(name) {
        Some(Symbol::Data(addr)) => Ok((Reg::ZERO, *addr as i64 + disp)),
        Some(Symbol::Text(_)) => Err(AsmError::new(
            line,
            format!("`{name}` is a text label, expected data"),
        )),
        None => Err(AsmError::new(line, format!("bad memory operand `{t}`"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::DATA_BASE;

    fn syms() -> HashMap<String, Symbol> {
        let mut m = HashMap::new();
        m.insert("buf".to_string(), Symbol::Data(DATA_BASE + 32));
        m.insert("fun".to_string(), Symbol::Text(4));
        m
    }

    #[test]
    fn registers_and_aliases() {
        assert_eq!(parse_reg("r0", 1).unwrap(), Reg::ZERO);
        assert_eq!(parse_reg("r31", 1).unwrap(), Reg::RA);
        assert_eq!(parse_reg("sp", 1).unwrap(), Reg::SP);
        assert_eq!(parse_reg("zero", 1).unwrap(), Reg::ZERO);
        assert!(parse_reg("r32", 1).is_err());
        assert!(parse_reg("x5", 1).is_err());
    }

    #[test]
    fn fregs() {
        assert_eq!(parse_freg("f0", 1).unwrap(), FReg::new(0));
        assert!(parse_freg("f32", 1).is_err());
        assert!(parse_freg("r3", 1).is_err());
    }

    #[test]
    fn immediates() {
        assert_eq!(parse_imm("42", 1).unwrap(), 42);
        assert_eq!(parse_imm("-42", 1).unwrap(), -42);
        assert_eq!(parse_imm("+7", 1).unwrap(), 7);
        assert_eq!(parse_imm("0x10", 1).unwrap(), 16);
        assert_eq!(parse_imm("0X10", 1).unwrap(), 16);
        assert!(parse_imm("ten", 1).is_err());
        assert!(parse_imm("", 1).is_err());
    }

    #[test]
    fn mem_register_forms() {
        let s = syms();
        assert_eq!(parse_mem("8(r2)", &s, 1).unwrap(), (Reg::new(2), 8));
        assert_eq!(parse_mem("-16(sp)", &s, 1).unwrap(), (Reg::SP, -16));
        assert_eq!(parse_mem("(r9)", &s, 1).unwrap(), (Reg::new(9), 0));
        assert!(parse_mem("8(r2", &s, 1).is_err());
        assert!(parse_mem("8)r2(", &s, 1).is_err());
    }

    #[test]
    fn mem_symbol_forms() {
        let s = syms();
        assert_eq!(
            parse_mem("buf", &s, 1).unwrap(),
            (Reg::ZERO, (DATA_BASE + 32) as i64)
        );
        assert_eq!(
            parse_mem("buf+8", &s, 1).unwrap(),
            (Reg::ZERO, (DATA_BASE + 40) as i64)
        );
        assert_eq!(
            parse_mem("buf-8", &s, 1).unwrap(),
            (Reg::ZERO, (DATA_BASE + 24) as i64)
        );
        assert!(parse_mem("fun", &s, 1).is_err());
        assert!(parse_mem("missing", &s, 1).is_err());
    }
}
