//! Property tests: assembler ↔ disassembler round trips over randomly
//! generated instruction sequences.

use proptest::prelude::*;

use hbdc_isa::asm::assemble;
use hbdc_isa::{disasm, AluOp, BranchCond, FReg, FpuOp, Inst, Reg, Width};

fn arb_reg() -> impl Strategy<Value = Reg> {
    (0u8..32).prop_map(Reg::new)
}

fn arb_freg() -> impl Strategy<Value = FReg> {
    (0u8..32).prop_map(FReg::new)
}

fn arb_alu_op() -> impl Strategy<Value = AluOp> {
    prop_oneof![
        Just(AluOp::Add),
        Just(AluOp::Sub),
        Just(AluOp::Mul),
        Just(AluOp::Div),
        Just(AluOp::Rem),
        Just(AluOp::And),
        Just(AluOp::Or),
        Just(AluOp::Xor),
        Just(AluOp::Nor),
        Just(AluOp::Sll),
        Just(AluOp::Srl),
        Just(AluOp::Sra),
        Just(AluOp::Slt),
        Just(AluOp::Sltu),
    ]
}

fn arb_width() -> impl Strategy<Value = Width> {
    prop_oneof![
        Just(Width::Byte),
        Just(Width::Half),
        Just(Width::Word),
        Just(Width::Double)
    ]
}

fn arb_cond() -> impl Strategy<Value = BranchCond> {
    prop_oneof![
        Just(BranchCond::Eq),
        Just(BranchCond::Ne),
        Just(BranchCond::Lt),
        Just(BranchCond::Ge),
        Just(BranchCond::Le),
        Just(BranchCond::Gt),
    ]
}

/// Non-control instructions round-trip one at a time; control flow is
/// covered by the whole-program strategy below (targets must resolve).
fn arb_plain_inst() -> impl Strategy<Value = Inst> {
    prop_oneof![
        (arb_alu_op(), arb_reg(), arb_reg(), arb_reg()).prop_map(|(op, rd, rs, rt)| Inst::Alu {
            op,
            rd,
            rs,
            rt
        }),
        (arb_alu_op(), arb_reg(), arb_reg(), -100_000i64..100_000)
            .prop_map(|(op, rd, rs, imm)| Inst::AluImm { op, rd, rs, imm }),
        (
            prop_oneof![
                Just(FpuOp::Add),
                Just(FpuOp::Sub),
                Just(FpuOp::Mul),
                Just(FpuOp::Div)
            ],
            arb_freg(),
            arb_freg(),
            arb_freg()
        )
            .prop_map(|(op, fd, fs, ft)| Inst::Fpu { op, fd, fs, ft }),
        (arb_cond(), arb_reg(), arb_freg(), arb_freg())
            .prop_map(|(cond, rd, fs, ft)| Inst::FpCmp { cond, rd, fs, ft }),
        (arb_freg(), arb_reg()).prop_map(|(fd, rs)| Inst::MovToFp { fd, rs }),
        (arb_reg(), arb_freg()).prop_map(|(rd, fs)| Inst::MovFromFp { rd, fs }),
        (arb_width(), arb_reg(), arb_reg(), -4096i64..4096).prop_map(
            |(width, rd, base, offset)| Inst::Load {
                width,
                rd,
                base,
                offset
            }
        ),
        (arb_width(), arb_reg(), arb_reg(), -4096i64..4096).prop_map(
            |(width, rs, base, offset)| Inst::Store {
                width,
                rs,
                base,
                offset
            }
        ),
        (arb_freg(), arb_reg(), -4096i64..4096).prop_map(|(fd, base, offset)| Inst::FLoad {
            width: Width::Double,
            fd,
            base,
            offset
        }),
        (arb_freg(), arb_reg(), -4096i64..4096).prop_map(|(fs, base, offset)| Inst::FStore {
            width: Width::Word,
            fs,
            base,
            offset
        }),
        (arb_reg()).prop_map(|rs| Inst::JumpReg { rs }),
        Just(Inst::Nop),
    ]
}

proptest! {
    #[test]
    fn disassembled_instructions_reassemble_identically(
        insts in prop::collection::vec(arb_plain_inst(), 1..60)
    ) {
        // Render each instruction, assemble the whole block, compare.
        let mut src = String::from(".text\nmain:\n");
        for i in &insts {
            src.push_str(&disasm::inst_to_string(i));
            src.push('\n');
        }
        src.push_str("halt\n");
        let program = assemble(&src).expect("disassembler output must assemble");
        prop_assert_eq!(program.text().len(), insts.len() + 1);
        for (original, reparsed) in insts.iter().zip(program.text()) {
            prop_assert_eq!(original, reparsed);
        }
    }

    #[test]
    fn whole_program_roundtrip_with_branches(
        insts in prop::collection::vec(arb_plain_inst(), 1..40),
        branch_points in prop::collection::vec((0usize..40, 0usize..40), 0..6)
    ) {
        // Build a program, sprinkle branches at valid targets, round-trip
        // through program_to_string.
        let mut text: Vec<Inst> = insts;
        let len = text.len() as u32;
        for (pos, target) in branch_points {
            let pos = pos % text.len();
            let target = (target as u32) % len;
            text[pos] = Inst::Branch {
                cond: BranchCond::Ne,
                rs: Reg::new(1),
                rt: Reg::new(2),
                target,
            };
        }
        text.push(Inst::Halt);
        let p1 = hbdc_isa::Program::from_parts(text, vec![], Default::default(), 0);
        let rendered = disasm::program_to_string(&p1);
        let p2 = assemble(&rendered).expect("rendered program must assemble");
        prop_assert_eq!(p1.text(), p2.text());
    }

    #[test]
    fn assembler_never_panics_on_arbitrary_text(src in "\\PC{0,200}") {
        // Errors are fine; panics are not.
        let _ = assemble(&src);
    }

    #[test]
    fn uses_and_defs_exclude_r0(inst in arb_plain_inst()) {
        for u in inst.uses() {
            if let hbdc_isa::ArchReg::Int(r) = u {
                prop_assert!(!r.is_zero());
            }
        }
        if let Some(hbdc_isa::ArchReg::Int(r)) = inst.def() {
            prop_assert!(!r.is_zero());
        }
    }
}

proptest! {
    #[test]
    fn object_format_roundtrips(insts in prop::collection::vec(arb_plain_inst(), 1..80)) {
        let mut text = insts;
        text.push(Inst::Halt);
        let p = hbdc_isa::Program::from_parts(text, vec![1, 2, 3], Default::default(), 0);
        let bytes = hbdc_isa::object::to_bytes(&p);
        let q = hbdc_isa::object::from_bytes(&bytes).expect("roundtrip decodes");
        prop_assert_eq!(p.text(), q.text());
        prop_assert_eq!(p.data(), q.data());
    }

    #[test]
    fn object_decoder_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..200)) {
        let _ = hbdc_isa::object::from_bytes(&bytes);
    }
}
