//! Property tests: trace analysis invariants over synthetic streams.

use proptest::prelude::*;

use hbdc_mem::{BankMapper, CacheGeometry};
use hbdc_trace::{
    ConflictAnalysis, ConsecutiveMapping, MemRef, StreamGenerator, StreamParams, TraceCacheSim,
};

fn arb_refs() -> impl Strategy<Value = Vec<MemRef>> {
    prop::collection::vec(
        (0u64..0x10000, any::<bool>()).prop_map(
            |(a, s)| {
                if s {
                    MemRef::store(a)
                } else {
                    MemRef::load(a)
                }
            },
        ),
        0..400,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn figure3_segments_always_sum_to_one(refs in arb_refs()) {
        let mut f3 = ConsecutiveMapping::new(4, 32);
        f3.extend(refs.iter().copied());
        let total: f64 = f3.segments().iter().sum();
        if refs.len() >= 2 {
            prop_assert!((total - 1.0).abs() < 1e-9, "sum = {total}");
            prop_assert_eq!(f3.pairs(), refs.len() as u64 - 1);
        } else {
            prop_assert_eq!(f3.pairs(), 0);
        }
    }

    #[test]
    fn figure3_segment_count_matches_banks(
        refs in arb_refs(),
        banks in prop::sample::select(vec![2u32, 4, 8]),
    ) {
        let mut f3 = ConsecutiveMapping::new(banks, 32);
        f3.extend(refs);
        prop_assert_eq!(f3.segments().len(), banks as usize + 1);
    }

    #[test]
    fn conflict_rates_are_probabilities(refs in arb_refs(), window in 1usize..10) {
        let mut a = ConflictAnalysis::new(BankMapper::bit_select(4, 32), window);
        a.extend(refs.iter().copied());
        a.finish();
        prop_assert!((0.0..=1.0).contains(&a.conflict_rate()));
        prop_assert!((0.0..=1.0).contains(&a.same_line_rate()));
        prop_assert!(a.conflict_rate() + a.same_line_rate() <= 1.0 + 1e-9);
        prop_assert_eq!(a.refs(), refs.len() as u64);
    }

    #[test]
    fn cache_sim_counts_are_consistent(refs in arb_refs()) {
        let mut sim = TraceCacheSim::new(CacheGeometry::new(4096, 32, 2));
        sim.extend(refs.iter().copied());
        let s = sim.stats();
        prop_assert_eq!(s.hits() + s.misses(), s.accesses());
        prop_assert_eq!(s.accesses(), refs.len() as u64);
        prop_assert!(s.writebacks() <= s.misses());
    }

    #[test]
    fn repeating_a_resident_stream_only_hits(slots in prop::collection::vec(0u64..64, 1..50)) {
        // A working set of <= 64 lines fits a 4KB 2-way cache... only if
        // no set has more than 2 of them; use a direct index so each slot
        // is its own line in a 32KB cache (1024 sets, direct-mapped).
        let mut sim = TraceCacheSim::paper_l1();
        let refs: Vec<MemRef> = slots.iter().map(|&s| MemRef::load(s * 32)).collect();
        sim.extend(refs.iter().copied()); // warm
        let misses_after_warm = sim.stats().misses();
        sim.extend(refs.iter().copied()); // replay
        prop_assert_eq!(sim.stats().misses(), misses_after_warm);
    }

    #[test]
    fn generator_respects_bounds(
        seed in any::<u64>(),
        same_line in 0.0f64..0.6,
        same_bank in 0.0f64..0.3,
    ) {
        let params = StreamParams {
            same_line,
            same_bank_diff_line: same_bank,
            working_set_lines: 256,
            ..StreamParams::default()
        };
        let lo = 0x1000_0000u64;
        let hi = lo + 256 * 32;
        for r in StreamGenerator::new(params, seed).take(500) {
            prop_assert!(r.addr >= lo && r.addr < hi);
            prop_assert_eq!(r.addr % 8, 0);
        }
    }

    #[test]
    fn generator_locality_tracks_dials(seed in 0u64..1000) {
        let params = StreamParams {
            same_line: 0.4,
            same_bank_diff_line: 0.1,
            ..StreamParams::default()
        };
        let mut f3 = ConsecutiveMapping::new(4, 32);
        f3.extend(StreamGenerator::new(params, seed).take(20_000));
        prop_assert!((f3.same_line_fraction() - 0.4).abs() < 0.05,
            "same-line {} for seed {seed}", f3.same_line_fraction());
    }
}
