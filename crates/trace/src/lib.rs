//! `hbdc-trace`: memory-reference-stream capture and analysis.
//!
//! The paper's Section 4 characterizes the memory reference stream to
//! explain why multi-bank caches trail ideal multi-porting: consecutive
//! references cluster in the *same bank*, and mostly in the *same line* of
//! that bank. This crate rebuilds that analysis pipeline:
//!
//! * [`MemRef`] — one reference of a stream (address + load/store).
//! * [`ConsecutiveMapping`] — the Figure 3 analyzer: for an infinite
//!   `M`-bank line-interleaved cache, classifies each consecutive
//!   reference pair as *same bank, same line*, *same bank, different
//!   line*, or `(B + i) mod M` for the other banks.
//! * [`ConflictAnalysis`] — finite-window bank-pressure statistics under
//!   any [`BankMapper`](hbdc_mem::BankMapper), used by the bank-selection
//!   ablation.
//! * [`StreamGenerator`] — a parameterized synthetic reference generator
//!   with dials for same-line locality, bank skew, stride, and store
//!   ratio; drives property tests and trace-driven studies.
//! * [`TraceCacheSim`] — a trace-driven cache simulator producing the
//!   miss rates of the paper's Table 2.
//! * [`ReuseAnalyzer`] — LRU stack-distance analysis, predicting miss
//!   rates across capacities from one pass over a stream.
//!
//! # Examples
//!
//! ```
//! use hbdc_trace::{ConsecutiveMapping, MemRef};
//!
//! let refs = [
//!     MemRef::load(0x000), // line 0, bank 0
//!     MemRef::load(0x008), // same line        → B-same-line
//!     MemRef::load(0x020), // next line, bank 1 → (B+1) mod 4
//! ];
//! let mut f3 = ConsecutiveMapping::new(4, 32);
//! f3.extend(refs.iter().copied());
//! assert_eq!(f3.pairs(), 2);
//! assert_eq!(f3.same_line_fraction(), 0.5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cachesim;
mod conflict;
mod figure3;
mod generator;
mod reuse;
mod stream;

pub use cachesim::TraceCacheSim;
pub use conflict::ConflictAnalysis;
pub use figure3::ConsecutiveMapping;
pub use generator::{StreamGenerator, StreamParams};
pub use reuse::ReuseAnalyzer;
pub use stream::MemRef;
