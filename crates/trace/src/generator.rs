//! Parameterized synthetic reference-stream generation.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::stream::MemRef;

/// Dials controlling a synthetic memory-reference stream.
///
/// The generator produces a stream whose consecutive-reference mapping
/// (Figure 3) can be steered: with probability `same_line` the next
/// reference stays in the current cache line; with probability
/// `same_bank_diff_line` it jumps a whole bank-stride (same bank, new
/// line); otherwise it moves to a uniformly random line in the working
/// set. Each reference is a store with probability `store_fraction`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamParams {
    /// Probability the successor reference falls in the same cache line.
    pub same_line: f64,
    /// Probability the successor falls in the same bank, different line.
    pub same_bank_diff_line: f64,
    /// Fraction of references that are stores.
    pub store_fraction: f64,
    /// Number of banks assumed for the same-bank jump (power of two).
    pub banks: u32,
    /// Cache line size in bytes (power of two).
    pub line_size: u64,
    /// Working-set size in lines.
    pub working_set_lines: u64,
}

impl Default for StreamParams {
    fn default() -> Self {
        Self {
            same_line: 0.35,
            same_bank_diff_line: 0.13,
            store_fraction: 0.25,
            banks: 4,
            line_size: 32,
            working_set_lines: 4096,
        }
    }
}

impl StreamParams {
    fn validate(&self) {
        assert!(
            (0.0..=1.0).contains(&self.same_line)
                && (0.0..=1.0).contains(&self.same_bank_diff_line)
                && self.same_line + self.same_bank_diff_line <= 1.0,
            "locality probabilities must be in [0,1] and sum to <= 1"
        );
        assert!(
            (0.0..=1.0).contains(&self.store_fraction),
            "store fraction must be in [0,1]"
        );
        assert!(self.banks.is_power_of_two(), "banks must be a power of two");
        assert!(
            self.line_size.is_power_of_two(),
            "line size must be a power of two"
        );
        assert!(
            self.working_set_lines > self.banks as u64,
            "working set too small"
        );
    }
}

/// A deterministic (seeded) synthetic reference-stream generator.
///
/// # Examples
///
/// ```
/// use hbdc_trace::{ConsecutiveMapping, StreamGenerator, StreamParams};
///
/// let params = StreamParams { same_line: 0.5, ..StreamParams::default() };
/// let refs: Vec<_> = StreamGenerator::new(params, 42).take(10_000).collect();
/// let mut f3 = ConsecutiveMapping::new(4, 32);
/// f3.extend(refs);
/// // The dialed locality shows up in the measured distribution.
/// assert!((f3.same_line_fraction() - 0.5).abs() < 0.05);
/// ```
#[derive(Debug, Clone)]
pub struct StreamGenerator {
    params: StreamParams,
    rng: StdRng,
    line: u64, // current line number
    base: u64,
}

impl StreamGenerator {
    /// Creates a generator with the given parameters and seed.
    ///
    /// # Panics
    ///
    /// Panics if the parameters are out of range (see [`StreamParams`]).
    pub fn new(params: StreamParams, seed: u64) -> Self {
        params.validate();
        let mut rng = StdRng::seed_from_u64(seed);
        let line = rng.gen_range(0..params.working_set_lines);
        Self {
            params,
            rng,
            line,
            base: 0x1000_0000 >> params.line_size.trailing_zeros(),
        }
    }

    /// The parameters in effect.
    pub fn params(&self) -> &StreamParams {
        &self.params
    }

    fn next_ref(&mut self) -> MemRef {
        let p = self.params;
        let roll: f64 = self.rng.gen();
        if roll < p.same_line {
            // stay in the current line
        } else if roll < p.same_line + p.same_bank_diff_line {
            // jump a multiple of the bank stride: same bank, new line
            let hops = self.rng.gen_range(1..=4u64);
            self.line = (self.line + hops * p.banks as u64) % p.working_set_lines;
        } else {
            self.line = self.rng.gen_range(0..p.working_set_lines);
        }
        let offset = self.rng.gen_range(0..p.line_size / 8) * 8;
        let addr = (self.base + self.line) * p.line_size + offset;
        if self.rng.gen::<f64>() < p.store_fraction {
            MemRef::store(addr)
        } else {
            MemRef::load(addr)
        }
    }
}

impl Iterator for StreamGenerator {
    type Item = MemRef;

    fn next(&mut self) -> Option<MemRef> {
        Some(self.next_ref())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figure3::ConsecutiveMapping;

    #[test]
    fn deterministic_for_same_seed() {
        let p = StreamParams::default();
        let a: Vec<MemRef> = StreamGenerator::new(p, 7).take(100).collect();
        let b: Vec<MemRef> = StreamGenerator::new(p, 7).take(100).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let p = StreamParams::default();
        let a: Vec<MemRef> = StreamGenerator::new(p, 1).take(100).collect();
        let b: Vec<MemRef> = StreamGenerator::new(p, 2).take(100).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn store_fraction_is_respected() {
        let p = StreamParams {
            store_fraction: 0.4,
            ..StreamParams::default()
        };
        let stores = StreamGenerator::new(p, 3)
            .take(20_000)
            .filter(|r| r.is_store)
            .count();
        let frac = stores as f64 / 20_000.0;
        assert!((frac - 0.4).abs() < 0.02, "measured {frac}");
    }

    #[test]
    fn locality_dials_steer_figure3() {
        let p = StreamParams {
            same_line: 0.4,
            same_bank_diff_line: 0.2,
            ..StreamParams::default()
        };
        let mut f3 = ConsecutiveMapping::new(4, 32);
        f3.extend(StreamGenerator::new(p, 5).take(50_000));
        assert!((f3.same_line_fraction() - 0.4).abs() < 0.03);
        // Random jumps also land in the same bank 1/4 of the time.
        let expected_diff = 0.2 + 0.4 * 0.25;
        assert!((f3.diff_line_fraction() - expected_diff).abs() < 0.04);
    }

    #[test]
    fn addresses_stay_in_working_set() {
        let p = StreamParams {
            working_set_lines: 64,
            ..StreamParams::default()
        };
        let lo = 0x1000_0000u64;
        let hi = lo + 64 * 32;
        for r in StreamGenerator::new(p, 11).take(5_000) {
            assert!(r.addr >= lo && r.addr < hi, "escaped: {:#x}", r.addr);
        }
    }

    #[test]
    #[should_panic(expected = "sum to <= 1")]
    fn invalid_probabilities_panic() {
        StreamGenerator::new(
            StreamParams {
                same_line: 0.8,
                same_bank_diff_line: 0.5,
                ..StreamParams::default()
            },
            0,
        );
    }
}
