//! LRU stack-distance (reuse-distance) analysis.
//!
//! The classic single-pass explanation of a workload's miss rate: a
//! reference's *stack distance* is the number of distinct cache lines
//! touched since the previous reference to its line. A fully-associative
//! LRU cache of `C` lines hits exactly the references with distance
//! `< C`, so the distance distribution predicts the miss rate of *every*
//! capacity at once. The experiment harness uses this to explain why the
//! workload analogs land in their Table 2 miss-rate bands.

use std::collections::HashMap;

use hbdc_stats::Histogram;

use crate::stream::MemRef;

/// Single-pass LRU stack-distance analyzer at cache-line granularity.
///
/// Distances are measured in distinct lines and recorded in a bounded
/// histogram (distances beyond the bound land in its overflow bucket and
/// are treated as compulsory-like for every plausible capacity). The
/// implementation is the counting-since-last-touch scheme: O(touched
/// lines) space, amortized O(distinct-lines-per-interval) time, exact for
/// the distances within the histogram bound.
///
/// # Examples
///
/// ```
/// use hbdc_trace::{MemRef, ReuseAnalyzer};
///
/// let mut r = ReuseAnalyzer::new(32, 1024);
/// r.record(MemRef::load(0x000)); // first touch: compulsory
/// r.record(MemRef::load(0x040)); // first touch
/// r.record(MemRef::load(0x004)); // line 0 again, 1 distinct line between
/// assert_eq!(r.compulsory(), 2);
/// assert_eq!(r.distances().count(1), 1);
/// // A 2-line fully-associative LRU cache would hit that reuse:
/// assert_eq!(r.predicted_miss_rate(2), 2.0 / 3.0);
/// ```
#[derive(Debug, Clone)]
pub struct ReuseAnalyzer {
    line_shift: u32,
    // line -> timestamp of last touch
    last_touch: HashMap<u64, u64>,
    // Timestamps of every touch, in order, for distance counting: the
    // number of *distinct* lines since the last touch is tracked with a
    // per-interval scan over a recency list.
    recency: Vec<u64>, // lines, most recent last
    positions: HashMap<u64, usize>,
    distances: Histogram,
    compulsory: u64,
    refs: u64,
}

impl ReuseAnalyzer {
    /// Creates an analyzer for `line_size`-byte lines, recording exact
    /// distances up to `max_distance` (larger distances overflow).
    ///
    /// # Panics
    ///
    /// Panics unless `line_size` is a power of two.
    pub fn new(line_size: u64, max_distance: usize) -> Self {
        assert!(
            line_size.is_power_of_two(),
            "line size must be a power of two"
        );
        Self {
            line_shift: line_size.trailing_zeros(),
            last_touch: HashMap::new(),
            recency: Vec::new(),
            positions: HashMap::new(),
            distances: Histogram::new("reuse distance", max_distance),
            compulsory: 0,
            refs: 0,
        }
    }

    /// Feeds one reference.
    pub fn record(&mut self, r: MemRef) {
        self.refs += 1;
        let line = r.addr >> self.line_shift;
        match self.positions.get(&line).copied() {
            None => {
                self.compulsory += 1;
            }
            Some(pos) => {
                // Distance = number of distinct lines more recent than
                // this line's previous touch.
                let distance = self.recency.len() - pos - 1;
                self.distances.record(distance);
                // Remove from its old position (tombstone-free compaction:
                // swap-remove would break ordering, so mark and filter).
                self.recency.remove(pos);
                for p in self.positions.values_mut() {
                    if *p > pos {
                        *p -= 1;
                    }
                }
            }
        }
        self.positions.insert(line, self.recency.len());
        self.recency.push(line);
        self.last_touch.insert(line, self.refs);
    }

    /// Feeds many references.
    pub fn extend(&mut self, refs: impl IntoIterator<Item = MemRef>) {
        for r in refs {
            self.record(r);
        }
    }

    /// References analyzed.
    pub fn refs(&self) -> u64 {
        self.refs
    }

    /// First-touch (compulsory) references.
    pub fn compulsory(&self) -> u64 {
        self.compulsory
    }

    /// The reuse-distance histogram (reuses only; compulsory excluded).
    pub fn distances(&self) -> &Histogram {
        &self.distances
    }

    /// Predicted miss rate of a fully-associative LRU cache holding
    /// `capacity_lines` lines: compulsory misses plus every reuse at
    /// distance `>= capacity_lines`. Overflowed distances always miss.
    pub fn predicted_miss_rate(&self, capacity_lines: usize) -> f64 {
        if self.refs == 0 {
            return 0.0;
        }
        let hits: u64 = self
            .distances
            .iter()
            .take(capacity_lines)
            .map(|(_, c)| c)
            .sum();
        (self.refs - hits) as f64 / self.refs as f64
    }

    /// Distinct lines touched so far (the footprint).
    pub fn footprint_lines(&self) -> usize {
        self.recency.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_touches_are_compulsory() {
        let mut r = ReuseAnalyzer::new(32, 64);
        for i in 0..10u64 {
            r.record(MemRef::load(i * 32));
        }
        assert_eq!(r.compulsory(), 10);
        assert_eq!(r.distances().total(), 0);
        assert_eq!(r.footprint_lines(), 10);
    }

    #[test]
    fn immediate_reuse_has_distance_zero() {
        let mut r = ReuseAnalyzer::new(32, 64);
        r.record(MemRef::load(0x100));
        r.record(MemRef::store(0x104));
        assert_eq!(r.distances().count(0), 1);
    }

    #[test]
    fn distance_counts_distinct_intervening_lines() {
        let mut r = ReuseAnalyzer::new(32, 64);
        r.record(MemRef::load(0x000)); // A
        r.record(MemRef::load(0x040)); // B
        r.record(MemRef::load(0x040)); // B again (distance 0)
        r.record(MemRef::load(0x080)); // C
        r.record(MemRef::load(0x000)); // A: B and C intervene → distance 2
        assert_eq!(r.distances().count(2), 1);
        assert_eq!(r.distances().count(0), 1);
    }

    #[test]
    fn cyclic_sweep_distance_equals_working_set() {
        let mut r = ReuseAnalyzer::new(32, 64);
        for _ in 0..3 {
            for i in 0..8u64 {
                r.record(MemRef::load(i * 32));
            }
        }
        // After the first pass, every reuse has distance 7.
        assert_eq!(r.distances().count(7), 16);
        assert_eq!(r.compulsory(), 8);
    }

    #[test]
    fn predicted_miss_rate_matches_lru_intuition() {
        let mut r = ReuseAnalyzer::new(32, 64);
        for _ in 0..10 {
            for i in 0..8u64 {
                r.record(MemRef::load(i * 32));
            }
        }
        // Capacity 8 lines: only the 8 compulsory misses.
        let mr8 = r.predicted_miss_rate(8);
        assert!((mr8 - 8.0 / 80.0).abs() < 1e-9);
        // Capacity 4 < working set: everything misses under LRU.
        assert_eq!(r.predicted_miss_rate(4), 1.0);
    }

    #[test]
    fn empty_analyzer_predicts_zero() {
        let r = ReuseAnalyzer::new(32, 16);
        assert_eq!(r.predicted_miss_rate(4), 0.0);
        assert_eq!(r.refs(), 0);
    }

    #[test]
    fn line_granularity_respected() {
        let mut r = ReuseAnalyzer::new(64, 16);
        r.record(MemRef::load(0x00));
        r.record(MemRef::load(0x3f)); // same 64B line
        assert_eq!(r.compulsory(), 1);
        assert_eq!(r.distances().count(0), 1);
    }
}
