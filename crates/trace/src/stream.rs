//! Memory-reference records.

/// One reference of a memory stream, in program order.
///
/// # Examples
///
/// ```
/// use hbdc_trace::MemRef;
///
/// let r = MemRef::store(0x1000_0040);
/// assert!(r.is_store);
/// assert_eq!(r.addr, 0x1000_0040);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemRef {
    /// Effective byte address.
    pub addr: u64,
    /// Whether this reference is a store.
    pub is_store: bool,
}

impl MemRef {
    /// Creates a load reference.
    pub fn load(addr: u64) -> Self {
        Self {
            addr,
            is_store: false,
        }
    }

    /// Creates a store reference.
    pub fn store(addr: u64) -> Self {
        Self {
            addr,
            is_store: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        assert!(!MemRef::load(4).is_store);
        assert!(MemRef::store(4).is_store);
    }
}
