//! Finite-window bank-pressure analysis under arbitrary bank mappers.

use hbdc_mem::BankMapper;

use crate::stream::MemRef;

/// Measures how well a [`BankMapper`] spreads a reference stream.
///
/// The stream is cut into fixed-size windows — a proxy for the group of
/// references a wide machine offers the cache in one cycle — and each
/// window is scored: references that map to a bank already claimed by an
/// older reference *in a different line* count as conflicts; same-line
/// collisions are counted separately because the LBIC can combine them.
///
/// This drives ablation A (bank-selection functions): the paper argues
/// that fancy mappers are unattractive because "much of the loss of
/// bandwidth due to same bank collisions map to the same cache line."
///
/// # Examples
///
/// ```
/// use hbdc_mem::BankMapper;
/// use hbdc_trace::{ConflictAnalysis, MemRef};
///
/// let mut a = ConflictAnalysis::new(BankMapper::bit_select(4, 32), 4);
/// a.extend((0..16u64).map(|i| MemRef::load(i * 128))); // stride = 4 lines
/// assert!(a.conflict_rate() > 0.5); // bit selection collapses to one bank
/// ```
#[derive(Debug, Clone)]
pub struct ConflictAnalysis {
    mapper: BankMapper,
    window: usize,
    buf: Vec<u64>, // addresses of the current window
    refs: u64,
    conflicts: u64,
    same_line_collisions: u64,
    line_shift: u32,
}

impl ConflictAnalysis {
    /// Creates an analysis with the given mapper and window size
    /// (references considered "simultaneous").
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(mapper: BankMapper, window: usize) -> Self {
        assert!(window > 0, "window must be at least 1");
        Self {
            mapper,
            window,
            buf: Vec::with_capacity(window),
            refs: 0,
            conflicts: 0,
            same_line_collisions: 0,
            line_shift: 5, // fixed 32-byte lines, the paper's L1
        }
    }

    fn flush(&mut self) {
        for (i, &a) in self.buf.iter().enumerate() {
            let bank = self.mapper.bank_of(a);
            let line = a >> self.line_shift;
            for &b in &self.buf[..i] {
                if self.mapper.bank_of(b) == bank {
                    if b >> self.line_shift == line {
                        self.same_line_collisions += 1;
                    } else {
                        self.conflicts += 1;
                    }
                    break; // count each reference at most once
                }
            }
        }
        self.buf.clear();
    }

    /// Feeds one reference.
    pub fn record(&mut self, r: MemRef) {
        self.refs += 1;
        self.buf.push(r.addr);
        if self.buf.len() == self.window {
            self.flush();
        }
    }

    /// Feeds many references.
    pub fn extend(&mut self, refs: impl IntoIterator<Item = MemRef>) {
        for r in refs {
            self.record(r);
        }
    }

    /// Completes any partial window and returns total references seen.
    pub fn finish(&mut self) -> u64 {
        self.flush();
        self.refs
    }

    /// References seen so far.
    pub fn refs(&self) -> u64 {
        self.refs
    }

    /// Fraction of references that conflicted (same bank, different line)
    /// with an older reference in their window.
    pub fn conflict_rate(&self) -> f64 {
        if self.refs == 0 {
            0.0
        } else {
            self.conflicts as f64 / self.refs as f64
        }
    }

    /// Fraction of references that collided with an older same-window
    /// reference in the same bank *and line* — bandwidth an LBIC recovers.
    pub fn same_line_rate(&self) -> f64 {
        if self.refs == 0 {
            0.0
        } else {
            self.same_line_collisions as f64 / self.refs as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spread_stream_has_no_conflicts() {
        let mut a = ConflictAnalysis::new(BankMapper::bit_select(4, 32), 4);
        a.extend((0..16u64).map(|i| MemRef::load(i * 32))); // round-robin banks
        a.finish();
        assert_eq!(a.conflict_rate(), 0.0);
        assert_eq!(a.same_line_rate(), 0.0);
    }

    #[test]
    fn same_line_pairs_are_not_conflicts() {
        let mut a = ConflictAnalysis::new(BankMapper::bit_select(4, 32), 2);
        a.extend([MemRef::load(0x100), MemRef::load(0x108)]);
        a.finish();
        assert_eq!(a.conflict_rate(), 0.0);
        assert!(a.same_line_rate() > 0.0);
    }

    #[test]
    fn pathological_stride_conflicts_under_bit_select() {
        let stride = 4 * 32u64; // multiple of banks*line: all in bank 0
        let mut bits = ConflictAnalysis::new(BankMapper::bit_select(4, 32), 4);
        bits.extend((0..64u64).map(|i| MemRef::load(i * stride)));
        bits.finish();
        let mut rand = ConflictAnalysis::new(BankMapper::pseudo_random(4, 32), 4);
        rand.extend((0..64u64).map(|i| MemRef::load(i * stride)));
        rand.finish();
        assert!(bits.conflict_rate() > rand.conflict_rate());
    }

    #[test]
    fn partial_window_flushed_by_finish() {
        let mut a = ConflictAnalysis::new(BankMapper::bit_select(2, 32), 4);
        a.extend([MemRef::load(0x00), MemRef::load(0x40)]); // same bank, 2 lines
        assert_eq!(a.conflict_rate(), 0.0); // window not yet full
        assert_eq!(a.finish(), 2);
        assert!(a.conflict_rate() > 0.0);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_window_panics() {
        ConflictAnalysis::new(BankMapper::bit_select(2, 32), 0);
    }
}
