//! The Figure 3 analyzer: consecutive-reference bank/line mapping.

use crate::stream::MemRef;

/// Classifies consecutive memory-reference pairs for an infinite
/// `M`-bank line-interleaved cache, reproducing the paper's Figure 3.
///
/// For each adjacent pair `(prev, next)` in the stream, the pair falls in
/// exactly one segment:
///
/// * **B-same-line** — same bank, same cache line (combinable locality);
/// * **B-diff-line** — same bank, different line (a true bank conflict
///   that more line-buffer ports cannot fix);
/// * **(B+i) mod M** for `i = 1..M` — the successor lands `i` banks ahead.
///
/// The cache is "infinite" in the sense of Figure 3's methodology: bank
/// and line are derived from the address alone; no capacity effects.
///
/// # Examples
///
/// ```
/// use hbdc_trace::{ConsecutiveMapping, MemRef};
///
/// let mut f3 = ConsecutiveMapping::new(4, 32);
/// f3.extend([MemRef::load(0x00), MemRef::load(0x80)]); // line 0 → line 4
/// assert_eq!(f3.diff_line_fraction(), 1.0); // same bank, 4 lines apart
/// ```
#[derive(Debug, Clone)]
pub struct ConsecutiveMapping {
    banks: u32,
    line_shift: u32,
    prev: Option<u64>, // previous line number
    same_line: u64,
    diff_line: u64,
    ahead: Vec<u64>, // ahead[i-1] counts (B+i) mod M
    pairs: u64,
}

impl ConsecutiveMapping {
    /// Creates an analyzer for an `banks`-bank cache with `line_size`-byte
    /// lines.
    ///
    /// # Panics
    ///
    /// Panics unless `banks` and `line_size` are powers of two and
    /// `banks >= 2`.
    pub fn new(banks: u32, line_size: u64) -> Self {
        assert!(
            banks >= 2 && banks.is_power_of_two(),
            "need >= 2 banks, power of two"
        );
        assert!(
            line_size.is_power_of_two(),
            "line size must be a power of two"
        );
        Self {
            banks,
            line_shift: line_size.trailing_zeros(),
            prev: None,
            same_line: 0,
            diff_line: 0,
            ahead: vec![0; banks as usize - 1],
            pairs: 0,
        }
    }

    /// Feeds one reference.
    pub fn record(&mut self, r: MemRef) {
        let line = r.addr >> self.line_shift;
        if let Some(prev) = self.prev {
            self.pairs += 1;
            let pb = prev & (self.banks as u64 - 1);
            let nb = line & (self.banks as u64 - 1);
            if pb == nb {
                if prev == line {
                    self.same_line += 1;
                } else {
                    self.diff_line += 1;
                }
            } else {
                let i = (nb + self.banks as u64 - pb) % self.banks as u64;
                self.ahead[i as usize - 1] += 1;
            }
        }
        self.prev = Some(line);
    }

    /// Feeds many references.
    pub fn extend(&mut self, refs: impl IntoIterator<Item = MemRef>) {
        for r in refs {
            self.record(r);
        }
    }

    /// Number of consecutive pairs classified.
    pub fn pairs(&self) -> u64 {
        self.pairs
    }

    fn frac(&self, n: u64) -> f64 {
        if self.pairs == 0 {
            0.0
        } else {
            n as f64 / self.pairs as f64
        }
    }

    /// Fraction of pairs in the same bank *and* same line.
    pub fn same_line_fraction(&self) -> f64 {
        self.frac(self.same_line)
    }

    /// Fraction of pairs in the same bank but different lines.
    pub fn diff_line_fraction(&self) -> f64 {
        self.frac(self.diff_line)
    }

    /// Fraction of pairs in the same bank (same or different line).
    pub fn same_bank_fraction(&self) -> f64 {
        self.frac(self.same_line + self.diff_line)
    }

    /// Fraction of pairs whose successor lands `i` banks ahead
    /// (`1 <= i < banks`).
    ///
    /// # Panics
    ///
    /// Panics if `i` is 0 or `>= banks`.
    pub fn ahead_fraction(&self, i: u32) -> f64 {
        assert!(i >= 1 && i < self.banks, "ahead index out of range");
        self.frac(self.ahead[i as usize - 1])
    }

    /// All five Figure 3 segments in presentation order:
    /// `[same_line, diff_line, (B+1), (B+2), ..., (B+M-1)]`. Sums to 1
    /// over a non-empty stream.
    pub fn segments(&self) -> Vec<f64> {
        let mut v = vec![self.same_line_fraction(), self.diff_line_fraction()];
        for i in 1..self.banks {
            v.push(self.ahead_fraction(i));
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(n: u64) -> MemRef {
        MemRef::load(n * 32)
    }

    #[test]
    fn sequential_lines_rotate_banks() {
        let mut f3 = ConsecutiveMapping::new(4, 32);
        f3.extend((0..9).map(line)); // lines 0..8: every pair is (B+1)
        assert_eq!(f3.pairs(), 8);
        assert_eq!(f3.ahead_fraction(1), 1.0);
        assert_eq!(f3.same_bank_fraction(), 0.0);
    }

    #[test]
    fn repeated_address_is_same_line() {
        let mut f3 = ConsecutiveMapping::new(4, 32);
        f3.extend([
            MemRef::load(0x100),
            MemRef::store(0x104),
            MemRef::load(0x11f),
        ]);
        assert_eq!(f3.same_line_fraction(), 1.0);
    }

    #[test]
    fn bank_stride_is_diff_line() {
        let mut f3 = ConsecutiveMapping::new(4, 32);
        f3.extend([line(0), line(4), line(8)]); // stride of 4 lines = same bank
        assert_eq!(f3.diff_line_fraction(), 1.0);
        assert_eq!(f3.same_line_fraction(), 0.0);
    }

    #[test]
    fn backward_stride_wraps_correctly() {
        let mut f3 = ConsecutiveMapping::new(4, 32);
        f3.extend([line(3), line(2)]); // bank 3 → bank 2 = 3 ahead (mod 4)
        assert_eq!(f3.ahead_fraction(3), 1.0);
    }

    #[test]
    fn segments_sum_to_one() {
        let mut f3 = ConsecutiveMapping::new(4, 32);
        f3.extend((0..100u64).map(|i| MemRef::load(i * 13 * 8)));
        let total: f64 = f3.segments().iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert_eq!(f3.segments().len(), 5); // same, diff, +1, +2, +3
    }

    #[test]
    fn empty_stream_is_all_zero() {
        let f3 = ConsecutiveMapping::new(4, 32);
        assert_eq!(f3.pairs(), 0);
        assert_eq!(f3.same_bank_fraction(), 0.0);
        assert!(f3.segments().iter().all(|&s| s == 0.0));
    }

    #[test]
    fn single_reference_creates_no_pairs() {
        let mut f3 = ConsecutiveMapping::new(4, 32);
        f3.record(line(7));
        assert_eq!(f3.pairs(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn ahead_zero_panics() {
        ConsecutiveMapping::new(4, 32).ahead_fraction(0);
    }

    #[test]
    fn two_bank_analyzer() {
        let mut f3 = ConsecutiveMapping::new(2, 32);
        f3.extend([line(0), line(1), line(2)]);
        assert_eq!(f3.ahead_fraction(1), 1.0);
        assert_eq!(f3.segments().len(), 3);
    }
}
