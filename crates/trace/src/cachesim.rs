//! Trace-driven cache simulation (miss rates for Table 2).

use hbdc_mem::{CacheGeometry, CacheStats, LookupResult, TagArray};

use crate::stream::MemRef;

/// A single-level trace-driven cache simulator: plays a reference stream
/// against a [`TagArray`] and reports hit/miss statistics.
///
/// This regenerates the paper's Table 2 "L1 Miss Rate (32KB)" column
/// without the cost of full timing simulation, and cross-checks the
/// timing simulator's cache behaviour in the integration tests.
///
/// # Examples
///
/// ```
/// use hbdc_mem::CacheGeometry;
/// use hbdc_trace::{MemRef, TraceCacheSim};
///
/// let mut sim = TraceCacheSim::new(CacheGeometry::new(32 * 1024, 32, 1));
/// sim.extend([MemRef::load(0x00), MemRef::load(0x04), MemRef::load(0x20)]);
/// assert_eq!(sim.stats().misses(), 2); // two distinct lines
/// assert_eq!(sim.stats().hits(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct TraceCacheSim {
    tags: TagArray,
    stats: CacheStats,
}

impl TraceCacheSim {
    /// Creates a cold cache with the given geometry.
    pub fn new(geom: CacheGeometry) -> Self {
        Self {
            tags: TagArray::new(geom),
            stats: CacheStats::new("trace"),
        }
    }

    /// The paper's L1: 32KB direct-mapped, 32-byte lines.
    pub fn paper_l1() -> Self {
        Self::new(CacheGeometry::new(32 * 1024, 32, 1))
    }

    /// Plays one reference; returns whether it hit.
    pub fn access(&mut self, r: MemRef) -> bool {
        let hit = self.tags.lookup(r.addr, r.is_store) == LookupResult::Hit;
        if !hit && self.tags.fill(r.addr, r.is_store).is_some() {
            self.stats.record_writeback();
        }
        self.stats.record_access(hit, r.is_store);
        hit
    }

    /// Plays a stream of references.
    pub fn extend(&mut self, refs: impl IntoIterator<Item = MemRef>) {
        for r in refs {
            self.access(r);
        }
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_misses_then_hits() {
        let mut sim = TraceCacheSim::paper_l1();
        assert!(!sim.access(MemRef::load(0x100)));
        assert!(sim.access(MemRef::load(0x11c)));
        assert!((sim.stats().miss_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn working_set_larger_than_cache_misses() {
        let mut sim = TraceCacheSim::paper_l1();
        // 64KB working set through a 32KB direct-mapped cache, twice:
        // second pass still misses everything (LRU thrash).
        for pass in 0..2 {
            for i in 0..2048u64 {
                let hit = sim.access(MemRef::load(i * 32));
                if pass == 1 {
                    // 2048 lines > 1024 sets: each set alternates two tags.
                    assert!(!hit || i >= 1024, "unexpected hit at line {i}");
                }
            }
        }
        assert!(sim.stats().miss_rate() > 0.9);
    }

    #[test]
    fn small_working_set_hits_after_warmup() {
        let mut sim = TraceCacheSim::paper_l1();
        for _ in 0..10 {
            for i in 0..64u64 {
                sim.access(MemRef::load(0x4000 + i * 32));
            }
        }
        // 64 cold misses out of 640 accesses.
        assert!((sim.stats().miss_rate() - 0.1).abs() < 1e-9);
    }

    #[test]
    fn store_misses_cause_writebacks_on_eviction() {
        let mut sim = TraceCacheSim::paper_l1();
        sim.access(MemRef::store(0x0000));
        sim.access(MemRef::load(0x8000)); // evicts the dirty line
        assert_eq!(sim.stats().writebacks(), 1);
    }
}
