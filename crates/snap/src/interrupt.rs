//! Process-wide SIGINT latch for graceful campaign shutdown.
//!
//! Long matrix campaigns want Ctrl-C to mean "checkpoint what you're
//! doing and flush the journal", not "die mid-write". [`install`] replaces
//! the default SIGINT disposition with a handler that only sets an atomic
//! flag; run loops poll [`requested`] at cycle-chunk boundaries and wind
//! down cleanly.
//!
//! The handler is async-signal-safe by construction (one atomic store).
//! On non-Unix targets [`install`] is a no-op and the latch can still be
//! driven by [`trigger`], which is also how tests exercise the shutdown
//! path without process-wide signals.

use std::sync::atomic::{AtomicBool, Ordering};

static REQUESTED: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
mod sys {
    //! The one `unsafe` corner of the workspace: registering a SIGINT
    //! handler through the C `signal` entry point that `std` already
    //! links. Kept to a single call so every other crate can stay under
    //! `#![forbid(unsafe_code)]`.

    const SIGINT: i32 = 2;

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_sigint(_signum: i32) {
        super::REQUESTED.store(true, std::sync::atomic::Ordering::SeqCst);
    }

    pub(super) fn install() {
        // SAFETY: `signal` is only handed an `extern "C"` function whose
        // body is a single atomic store — async-signal-safe per POSIX.
        unsafe {
            signal(SIGINT, on_sigint as *const () as usize);
        }
    }
}

/// Installs the SIGINT latch. Idempotent; later installs are harmless.
///
/// After this call, Ctrl-C no longer kills the process — callers are
/// responsible for polling [`requested`] and exiting.
pub fn install() {
    #[cfg(unix)]
    sys::install();
}

/// Whether an interrupt has been requested since the last [`reset`].
pub fn requested() -> bool {
    REQUESTED.load(Ordering::SeqCst)
}

/// Sets the latch by hand — the test hook, and the non-Unix fallback.
pub fn trigger() {
    REQUESTED.store(true, Ordering::SeqCst);
}

/// Clears the latch (e.g. between journaled runs in one process).
pub fn reset() {
    REQUESTED.store(false, Ordering::SeqCst);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latch_sets_and_clears() {
        reset();
        assert!(!requested());
        trigger();
        assert!(requested());
        reset();
        assert!(!requested());
    }
}
