//! Advisory file locking, process liveness probes, and corrupt-artifact
//! eviction — the OS-facing primitives under the multi-process campaign
//! supervisor.
//!
//! Several cooperating `hbdc` processes coordinate over one matrix run
//! journal. Every journal mutation is a read-modify-write under an
//! exclusive [`FileLock`] on a `.lock` sibling, lease liveness is judged
//! with [`pid_alive`], and graceful shutdown of worker subprocesses uses
//! [`send_signal`]. Like [`crate::interrupt`], the `unsafe` here is
//! confined to thin `extern "C"` calls into functions `std` already
//! links (`flock`, `kill`); every other crate in the workspace stays
//! under `#![forbid(unsafe_code)]`.
//!
//! On non-Unix targets the lock degrades to a no-op (single-process
//! campaigns remain correct; multi-process sharding is a Unix feature),
//! [`pid_alive`] conservatively reports `true` (never steal a lease you
//! cannot probe), and [`send_signal`] reports failure.

use std::fs::File;
use std::path::{Path, PathBuf};

use crate::SnapError;

#[cfg(unix)]
mod sys {
    //! `extern "C"` shims in the style of [`crate::interrupt::sys`]: the
    //! symbols are part of the C runtime `std` links on every Unix
    //! target, and the constants (`LOCK_EX` = 2, `LOCK_UN` = 8) are
    //! identical on Linux and the BSDs.

    use std::os::unix::io::AsRawFd;

    const LOCK_EX: i32 = 2;
    const LOCK_UN: i32 = 8;

    extern "C" {
        fn flock(fd: i32, operation: i32) -> i32;
        fn kill(pid: i32, sig: i32) -> i32;
    }

    /// Blocks until an exclusive advisory lock is held on `file`.
    pub(super) fn lock_exclusive(file: &std::fs::File) -> bool {
        // SAFETY: `flock` is handed a file descriptor owned by `file`,
        // which outlives the call; the function has no memory effects.
        unsafe { flock(file.as_raw_fd(), LOCK_EX) == 0 }
    }

    /// Releases the advisory lock (also released by the kernel when the
    /// descriptor closes, including on SIGKILL — a dead holder can never
    /// wedge the campaign).
    pub(super) fn unlock(file: &std::fs::File) {
        // SAFETY: as above; an error here is ignorable because close()
        // releases the lock regardless.
        unsafe {
            flock(file.as_raw_fd(), LOCK_UN);
        }
    }

    /// Sends `sig` to `pid` (`sig` 0 probes for existence).
    pub(super) fn send(pid: u32, sig: i32) -> bool {
        let Ok(pid) = i32::try_from(pid) else {
            return false;
        };
        // SAFETY: `kill` takes two plain integers and touches no memory.
        unsafe { kill(pid, sig) == 0 }
    }
}

/// An exclusive advisory lock on a file, held until dropped.
///
/// The lock file itself carries no data — it exists so lockers never
/// contend with the atomic rename that replaces the file they guard. A
/// holder killed with SIGKILL releases the lock when the kernel closes
/// its descriptors, so crashed processes cannot deadlock survivors.
#[derive(Debug)]
pub struct FileLock {
    file: File,
}

impl FileLock {
    /// Creates `path` if needed and blocks until this process holds the
    /// exclusive advisory lock on it.
    ///
    /// # Errors
    ///
    /// [`SnapError::Io`] if the lock file cannot be created or locked.
    pub fn exclusive(path: &Path) -> Result<Self, SnapError> {
        let file = File::options()
            .create(true)
            .append(true)
            .open(path)
            .map_err(|e| SnapError::Io(format!("open lock {}: {e}", path.display())))?;
        #[cfg(unix)]
        if !sys::lock_exclusive(&file) {
            return Err(SnapError::Io(format!("flock {}", path.display())));
        }
        Ok(Self { file })
    }
}

impl Drop for FileLock {
    fn drop(&mut self) {
        #[cfg(unix)]
        sys::unlock(&self.file);
        #[cfg(not(unix))]
        let _ = &self.file;
    }
}

/// Whether a process with this pid currently exists, per `kill(pid, 0)`.
///
/// Used to reclaim journal leases from dead owners without waiting out
/// the heartbeat TTL. A `false` is authoritative for same-user
/// processes (campaign shards run as one user); pid reuse can make a
/// stale lease look alive, which merely delays reclaim until its
/// heartbeat expires. Non-Unix targets always report `true`.
pub fn pid_alive(pid: u32) -> bool {
    #[cfg(unix)]
    {
        sys::send(pid, 0)
    }
    #[cfg(not(unix))]
    {
        let _ = pid;
        true
    }
}

/// Sends a signal to a process; `true` if the kernel accepted it.
/// No-op (`false`) on non-Unix targets.
pub fn send_signal(pid: u32, sig: i32) -> bool {
    #[cfg(unix)]
    {
        sys::send(pid, sig)
    }
    #[cfg(not(unix))]
    {
        let _ = (pid, sig);
        false
    }
}

/// `SIGINT`, for asking a worker subprocess to checkpoint and wind down.
pub const SIGINT: i32 = 2;

/// Moves a corrupt or truncated artifact out of the way by renaming it
/// to `<path>.corrupt`, returning the quarantine path. The next reader
/// sees a missing file (a cache miss / fresh run) instead of tripping
/// over the same bad bytes on every attempt; the evidence stays on disk
/// for a post-mortem.
///
/// # Errors
///
/// [`SnapError::Io`] if the rename fails (the caller should fall back
/// to ignoring the file rather than dying).
pub fn evict_corrupt(path: &Path) -> Result<PathBuf, SnapError> {
    let mut name = path.as_os_str().to_owned();
    name.push(".corrupt");
    let dest = PathBuf::from(name);
    std::fs::rename(path, &dest).map_err(|e| {
        SnapError::Io(format!(
            "evict {} -> {}: {e}",
            path.display(),
            dest.display()
        ))
    })?;
    Ok(dest)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("hbdc-lock-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn lock_is_exclusive_across_threads() {
        let dir = scratch("excl");
        let path = dir.join("j.lock");
        let guard = FileLock::exclusive(&path).unwrap();
        // A second locker must block until the first drops; observe that
        // through a side-effect ordering.
        let (tx, rx) = std::sync::mpsc::channel::<&'static str>();
        let p2 = path.clone();
        let tx2 = tx.clone();
        let h = std::thread::spawn(move || {
            let _g = FileLock::exclusive(&p2).unwrap();
            tx2.send("locked").unwrap();
        });
        std::thread::sleep(std::time::Duration::from_millis(50));
        tx.send("dropping").unwrap();
        drop(guard);
        h.join().unwrap();
        assert_eq!(rx.recv().unwrap(), "dropping");
        assert_eq!(rx.recv().unwrap(), "locked");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn own_pid_is_alive_and_absurd_pid_is_not() {
        assert!(pid_alive(std::process::id()));
        #[cfg(unix)]
        assert!(!pid_alive(u32::MAX / 2), "pid far beyond pid_max");
    }

    #[test]
    fn evict_renames_to_corrupt_sibling() {
        let dir = scratch("evict");
        let path = dir.join("trace.hbtr");
        std::fs::write(&path, b"garbage").unwrap();
        let dest = evict_corrupt(&path).unwrap();
        assert!(!path.exists());
        assert_eq!(dest, dir.join("trace.hbtr.corrupt"));
        assert_eq!(std::fs::read(&dest).unwrap(), b"garbage");
        assert!(evict_corrupt(&path).is_err(), "evicting a missing file");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
