//! `hbdc-snap`: the crash-safety substrate for the simulator family.
//!
//! Every other crate in this workspace hand-rolls exactly one durable
//! artifact kind — simulator snapshots ([`hbdc-cpu`]'s `SimSnapshot`) and
//! matrix run journals (`hbdc-bench`'s `RunJournal`) — and both are built
//! on the primitives here:
//!
//! * [`StateWriter`] / [`StateReader`] — a tiny little-endian binary codec
//!   with length-prefixed byte strings. The workspace deliberately carries
//!   no serializer dependency, so this *is* the serialization layer.
//! * [`seal`] / [`open`] — a versioned, checksummed container envelope
//!   (magic, format version, payload length, FNV-1a checksum) so stale or
//!   truncated state files fail loudly instead of resuming garbage.
//! * [`write_atomic`] — write-to-temp-then-rename, the crash-safe file
//!   update discipline both snapshot and journal writers use.
//! * [`interrupt`] — a process-wide SIGINT latch so long campaigns can
//!   shut down gracefully at a cycle boundary instead of dying mid-write.
//! * [`lock`] — advisory file locking, pid liveness probes, and
//!   corrupt-artifact eviction for multi-process campaign supervision.
//!
//! # Examples
//!
//! ```
//! use hbdc_snap::{open, seal, StateReader, StateWriter};
//!
//! let mut w = StateWriter::new();
//! w.put_u64(42);
//! w.put_str("li");
//! let file = seal(*b"DEMO", 1, &w.into_bytes());
//!
//! let payload = open(&file, *b"DEMO", 1)?;
//! let mut r = StateReader::new(payload);
//! assert_eq!(r.get_u64()?, 42);
//! assert_eq!(r.get_str()?, "li");
//! r.expect_end()?;
//! # Ok::<(), hbdc_snap::SnapError>(())
//! ```

#![warn(missing_docs)]

pub mod interrupt;
pub mod lock;

use std::fmt;
use std::path::Path;

/// Errors from decoding or verifying serialized state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapError {
    /// The buffer ended before the requested field.
    Truncated {
        /// Byte offset at which the read was attempted.
        at: usize,
        /// Bytes the field needed.
        want: usize,
    },
    /// The container's magic bytes do not match the expected kind.
    BadMagic {
        /// Magic found in the file.
        found: [u8; 4],
        /// Magic the reader expected.
        want: [u8; 4],
    },
    /// The container was written by an incompatible format version.
    BadVersion {
        /// Version found in the file.
        found: u32,
        /// Version the reader understands.
        want: u32,
    },
    /// The payload checksum does not match the stored checksum: the file
    /// was truncated, bit-rotted, or hand-edited.
    ChecksumMismatch {
        /// Checksum stored in the container header.
        stored: u64,
        /// Checksum computed over the payload as read.
        computed: u64,
    },
    /// The bytes decoded but describe an impossible state (bad enum tag,
    /// mismatched collection length, dangling reference).
    Corrupt(String),
    /// An I/O failure while reading or writing a state file.
    Io(String),
}

impl fmt::Display for SnapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapError::Truncated { at, want } => {
                write!(f, "state truncated: needed {want} bytes at offset {at}")
            }
            SnapError::BadMagic { found, want } => write!(
                f,
                "not a {} file (magic {:?})",
                String::from_utf8_lossy(want),
                found
            ),
            SnapError::BadVersion { found, want } => {
                write!(f, "unsupported format version {found} (expected {want})")
            }
            SnapError::ChecksumMismatch { stored, computed } => write!(
                f,
                "checksum mismatch: header says {stored:#018x}, payload hashes to {computed:#018x}"
            ),
            SnapError::Corrupt(detail) => write!(f, "corrupt state: {detail}"),
            SnapError::Io(detail) => write!(f, "state file I/O: {detail}"),
        }
    }
}

impl std::error::Error for SnapError {}

/// 64-bit FNV-1a over `bytes` — the workspace's standing choice for
/// content fingerprints (fast, dependency-free, and good enough to catch
/// corruption; this is an integrity check, not a security boundary).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// Append-only binary encoder; the writing half of the codec.
///
/// All integers are little-endian; byte strings are `u64`-length-prefixed.
#[derive(Debug, Default, Clone)]
pub struct StateWriter {
    buf: Vec<u8>,
}

impl StateWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a bool as one byte (0/1).
    pub fn put_bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    /// Appends a `u32`, little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`, little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `i64`, little-endian.
    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` as its IEEE-754 bits.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Appends a `usize` widened to `u64`.
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Appends an `Option<u64>`: presence byte, then the value if any.
    pub fn put_opt_u64(&mut self, v: Option<u64>) {
        match v {
            Some(x) => {
                self.put_bool(true);
                self.put_u64(x);
            }
            None => self.put_bool(false),
        }
    }

    /// Appends an `Option<bool>`: presence byte, then the value if any.
    pub fn put_opt_bool(&mut self, v: Option<bool>) {
        match v {
            Some(x) => {
                self.put_bool(true);
                self.put_bool(x);
            }
            None => self.put_bool(false),
        }
    }

    /// Appends a `u64` as an LEB128 varint (1–10 bytes, short for small
    /// values) — the workhorse of the trace record encoding, where most
    /// deltas fit in one or two bytes.
    pub fn put_varint_u64(&mut self, mut v: u64) {
        loop {
            let byte = (v & 0x7f) as u8;
            v >>= 7;
            if v == 0 {
                self.buf.push(byte);
                return;
            }
            self.buf.push(byte | 0x80);
        }
    }

    /// Appends an `i64` as a zigzag-mapped varint, so small deltas of
    /// either sign encode in one byte.
    pub fn put_varint_i64(&mut self, v: i64) {
        self.put_varint_u64(zigzag_encode(v));
    }

    /// Appends a length-prefixed byte string.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_u64(v.len() as u64);
        self.buf.extend_from_slice(v);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) {
        self.put_bytes(v.as_bytes());
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the writer, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// Sequential binary decoder; the reading half of the codec.
///
/// Every accessor advances the cursor and fails with
/// [`SnapError::Truncated`] instead of panicking on short input.
#[derive(Debug, Clone)]
pub struct StateReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> StateReader<'a> {
    /// Wraps a byte slice for decoding.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapError> {
        if self.buf.len() - self.pos < n {
            return Err(SnapError::Truncated {
                at: self.pos,
                want: n,
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> Result<u8, SnapError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a bool; any byte other than 0/1 is corruption.
    pub fn get_bool(&mut self) -> Result<bool, SnapError> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(SnapError::Corrupt(format!("bool byte {other}"))),
        }
    }

    /// Reads a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, SnapError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, SnapError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads a little-endian `i64`.
    pub fn get_i64(&mut self) -> Result<i64, SnapError> {
        Ok(self.get_u64()? as i64)
    }

    /// Reads an `f64` from its IEEE-754 bits.
    pub fn get_f64(&mut self) -> Result<f64, SnapError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Reads a `u64` and narrows it to `usize`.
    pub fn get_usize(&mut self) -> Result<usize, SnapError> {
        let v = self.get_u64()?;
        usize::try_from(v).map_err(|_| SnapError::Corrupt(format!("usize overflow: {v}")))
    }

    /// Reads an `Option<u64>` written by [`StateWriter::put_opt_u64`].
    pub fn get_opt_u64(&mut self) -> Result<Option<u64>, SnapError> {
        Ok(if self.get_bool()? {
            Some(self.get_u64()?)
        } else {
            None
        })
    }

    /// Reads an `Option<bool>` written by [`StateWriter::put_opt_bool`].
    pub fn get_opt_bool(&mut self) -> Result<Option<bool>, SnapError> {
        Ok(if self.get_bool()? {
            Some(self.get_bool()?)
        } else {
            None
        })
    }

    /// Reads an LEB128 varint `u64` written by
    /// [`StateWriter::put_varint_u64`].
    pub fn get_varint_u64(&mut self) -> Result<u64, SnapError> {
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            let byte = self.get_u8()?;
            if shift == 63 && byte > 1 {
                return Err(SnapError::Corrupt("varint overflows u64".into()));
            }
            v |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
            if shift > 63 {
                return Err(SnapError::Corrupt("varint longer than 10 bytes".into()));
            }
        }
    }

    /// Reads a zigzag varint `i64` written by
    /// [`StateWriter::put_varint_i64`].
    pub fn get_varint_i64(&mut self) -> Result<i64, SnapError> {
        Ok(zigzag_decode(self.get_varint_u64()?))
    }

    /// Reads a length-prefixed byte string.
    pub fn get_bytes(&mut self) -> Result<Vec<u8>, SnapError> {
        let n = self.get_usize()?;
        Ok(self.take(n)?.to_vec())
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<String, SnapError> {
        String::from_utf8(self.get_bytes()?)
            .map_err(|e| SnapError::Corrupt(format!("invalid UTF-8 string: {e}")))
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Fails unless every byte was consumed — catches writer/reader skew.
    pub fn expect_end(&self) -> Result<(), SnapError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(SnapError::Corrupt(format!(
                "{} trailing bytes after the last field",
                self.remaining()
            )))
        }
    }
}

/// Maps an `i64` onto a `u64` with small magnitudes of either sign near
/// zero (`0, -1, 1, -2, …` → `0, 1, 2, 3, …`), so varint encoding stays
/// short for signed deltas.
pub fn zigzag_encode(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag_encode`].
pub fn zigzag_decode(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Container header size: magic (4) + version (4) + length (8) + checksum (8).
const HEADER_LEN: usize = 24;

/// Wraps `payload` in a checksummed container: 4-byte `magic`, `u32`
/// format `version`, `u64` payload length, `u64` FNV-1a payload checksum,
/// then the payload itself.
pub fn seal(magic: [u8; 4], version: u32, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&magic);
    out.extend_from_slice(&version.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&fnv1a64(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Verifies a [`seal`]ed container and returns a view of its payload.
///
/// # Errors
///
/// [`SnapError::BadMagic`], [`SnapError::BadVersion`],
/// [`SnapError::Truncated`], or [`SnapError::ChecksumMismatch`] depending
/// on which integrity layer failed first.
pub fn open(bytes: &[u8], magic: [u8; 4], version: u32) -> Result<&[u8], SnapError> {
    if bytes.len() < HEADER_LEN {
        return Err(SnapError::Truncated {
            at: bytes.len(),
            want: HEADER_LEN,
        });
    }
    let found_magic: [u8; 4] = [bytes[0], bytes[1], bytes[2], bytes[3]];
    if found_magic != magic {
        return Err(SnapError::BadMagic {
            found: found_magic,
            want: magic,
        });
    }
    let found_version = u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]);
    if found_version != version {
        return Err(SnapError::BadVersion {
            found: found_version,
            want: version,
        });
    }
    let len = u64::from_le_bytes([
        bytes[8], bytes[9], bytes[10], bytes[11], bytes[12], bytes[13], bytes[14], bytes[15],
    ]) as usize;
    let stored = u64::from_le_bytes([
        bytes[16], bytes[17], bytes[18], bytes[19], bytes[20], bytes[21], bytes[22], bytes[23],
    ]);
    let payload = bytes
        .get(HEADER_LEN..HEADER_LEN + len)
        .ok_or(SnapError::Truncated {
            at: bytes.len(),
            want: HEADER_LEN + len,
        })?;
    let computed = fnv1a64(payload);
    if computed != stored {
        return Err(SnapError::ChecksumMismatch { stored, computed });
    }
    Ok(payload)
}

/// Writes `bytes` to `path` crash-safely: the content lands in a
/// uniquely named `.tmp.<pid>.<seq>` sibling first and is renamed into
/// place, so readers only ever see the old file or the complete new one
/// — never a torn write.
///
/// The temp name carries the writer's pid and a per-process sequence
/// number because campaign shards race: two processes capturing the same
/// benchmark may persist the same trace-cache entry at the same instant,
/// and with a shared temp name one writer's `O_TRUNC` would interleave
/// with the other's bytes before the rename — a sealed-looking torn
/// file. With unique temps each rename installs one writer's complete
/// image (the contents are identical anyway: captures are
/// deterministic).
///
/// # Errors
///
/// [`SnapError::Io`] describing the failing operation.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), SnapError> {
    use std::sync::atomic::{AtomicU64, Ordering};
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(format!(
        ".tmp.{}.{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let tmp = std::path::PathBuf::from(tmp);
    std::fs::write(&tmp, bytes)
        .map_err(|e| SnapError::Io(format!("write {}: {e}", tmp.display())))?;
    std::fs::rename(&tmp, path).map_err(|e| {
        // Best-effort cleanup: a failed rename must not strand the temp.
        let _ = std::fs::remove_file(&tmp);
        SnapError::Io(format!(
            "rename {} -> {}: {e}",
            tmp.display(),
            path.display()
        ))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_every_field_kind() {
        let mut w = StateWriter::new();
        w.put_u8(7);
        w.put_bool(true);
        w.put_u32(0xdead_beef);
        w.put_u64(u64::MAX);
        w.put_i64(-42);
        w.put_f64(-1234.5678);
        w.put_usize(99);
        w.put_opt_u64(Some(5));
        w.put_opt_u64(None);
        w.put_opt_bool(Some(false));
        w.put_opt_bool(None);
        w.put_bytes(&[1, 2, 3]);
        w.put_str("hello");
        let bytes = w.into_bytes();

        let mut r = StateReader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert!(r.get_bool().unwrap());
        assert_eq!(r.get_u32().unwrap(), 0xdead_beef);
        assert_eq!(r.get_u64().unwrap(), u64::MAX);
        assert_eq!(r.get_i64().unwrap(), -42);
        assert_eq!(r.get_f64().unwrap(), -1234.5678);
        assert_eq!(r.get_usize().unwrap(), 99);
        assert_eq!(r.get_opt_u64().unwrap(), Some(5));
        assert_eq!(r.get_opt_u64().unwrap(), None);
        assert_eq!(r.get_opt_bool().unwrap(), Some(false));
        assert_eq!(r.get_opt_bool().unwrap(), None);
        assert_eq!(r.get_bytes().unwrap(), vec![1, 2, 3]);
        assert_eq!(r.get_str().unwrap(), "hello");
        r.expect_end().unwrap();
    }

    #[test]
    fn varint_roundtrip_across_magnitudes() {
        let mut w = StateWriter::new();
        let us = [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX];
        let is = [0i64, 1, -1, 63, -64, 64, -65, i64::MAX, i64::MIN];
        for &v in &us {
            w.put_varint_u64(v);
        }
        for &v in &is {
            w.put_varint_i64(v);
        }
        let bytes = w.into_bytes();
        let mut r = StateReader::new(&bytes);
        for &v in &us {
            assert_eq!(r.get_varint_u64().unwrap(), v);
        }
        for &v in &is {
            assert_eq!(r.get_varint_i64().unwrap(), v);
        }
        r.expect_end().unwrap();
    }

    #[test]
    fn varint_is_compact_for_small_values() {
        let mut w = StateWriter::new();
        w.put_varint_u64(5);
        w.put_varint_i64(-3);
        assert_eq!(w.len(), 2);
    }

    #[test]
    fn varint_rejects_overflow_and_truncation() {
        // 11 continuation bytes: longer than any valid u64 varint.
        let mut r = StateReader::new(&[0x80; 11]);
        assert!(matches!(r.get_varint_u64(), Err(SnapError::Corrupt(_))));
        // 10th byte carrying bits beyond the 64th overflows.
        let mut r = StateReader::new(&[0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x7f]);
        assert!(matches!(r.get_varint_u64(), Err(SnapError::Corrupt(_))));
        // A dangling continuation bit is truncation, not a panic.
        let mut r = StateReader::new(&[0x80]);
        assert!(matches!(
            r.get_varint_u64(),
            Err(SnapError::Truncated { .. })
        ));
    }

    #[test]
    fn zigzag_is_a_bijection_near_zero() {
        for (i, v) in [0i64, -1, 1, -2, 2, -3].iter().enumerate() {
            assert_eq!(zigzag_encode(*v), i as u64);
            assert_eq!(zigzag_decode(i as u64), *v);
        }
        assert_eq!(zigzag_decode(zigzag_encode(i64::MIN)), i64::MIN);
        assert_eq!(zigzag_decode(zigzag_encode(i64::MAX)), i64::MAX);
    }

    #[test]
    fn short_reads_are_truncation_not_panic() {
        let mut r = StateReader::new(&[1, 2]);
        assert!(matches!(
            r.get_u64(),
            Err(SnapError::Truncated { at: 0, want: 8 })
        ));
    }

    #[test]
    fn bad_bool_byte_is_corrupt() {
        let mut r = StateReader::new(&[9]);
        assert!(matches!(r.get_bool(), Err(SnapError::Corrupt(_))));
    }

    #[test]
    fn trailing_bytes_are_detected() {
        let r = StateReader::new(&[0]);
        assert!(matches!(r.expect_end(), Err(SnapError::Corrupt(_))));
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        // Standard FNV-1a 64-bit test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn seal_open_roundtrip() {
        let sealed = seal(*b"TEST", 3, b"payload");
        assert_eq!(open(&sealed, *b"TEST", 3).unwrap(), b"payload");
    }

    #[test]
    fn open_rejects_wrong_magic_version_and_corruption() {
        let sealed = seal(*b"TEST", 3, b"payload");
        assert!(matches!(
            open(&sealed, *b"XXXX", 3),
            Err(SnapError::BadMagic { .. })
        ));
        assert!(matches!(
            open(&sealed, *b"TEST", 4),
            Err(SnapError::BadVersion { found: 3, want: 4 })
        ));
        let mut flipped = sealed.clone();
        *flipped.last_mut().unwrap() ^= 1;
        assert!(matches!(
            open(&flipped, *b"TEST", 3),
            Err(SnapError::ChecksumMismatch { .. })
        ));
        assert!(matches!(
            open(&sealed[..10], *b"TEST", 3),
            Err(SnapError::Truncated { .. })
        ));
    }

    #[test]
    fn write_atomic_replaces_content() {
        let dir = std::env::temp_dir().join(format!("hbdc-snap-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("state.bin");
        write_atomic(&path, b"one").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"one");
        write_atomic(&path, b"two").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"two");
        // No temp files linger, whatever suffix scheme they used.
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name())
            .filter(|n| n != "state.bin")
            .collect();
        assert!(leftovers.is_empty(), "stray temp files: {leftovers:?}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn errors_display_and_are_std_error() {
        let e: Box<dyn std::error::Error> = Box::new(SnapError::BadVersion { found: 9, want: 1 });
        assert!(e.to_string().contains("version 9"));
    }
}
